//! The attendance engine: Luce-choice attendance probabilities (Eq. 1),
//! expected attendance (Eq. 2), total utility (Eq. 3) and incremental
//! assignment scores (Eq. 4).
//!
//! # Data layout — blocked per-interval columns
//!
//! For every interval `t` the engine maintains two per-user aggregates:
//!
//! * `B_t[u] = Σ_{c ∈ C_t} µ(u,c)` — the static *competing mass*;
//! * `M_t[u] = Σ_{p ∈ E_t(S)} µ(u,p)` — the dynamic *scheduled mass*.
//!
//! With `D = B_t[u] + M_t[u]`, Eq. 1 gives `ρ(u,e,t) = σ(u,t)·µ(u,e)/D`, the
//! interval's total expected attendance is `Σ_u σ(u,t)·M_t[u]/D`, and the
//! assignment score of `r → t` (Eq. 4) telescopes to
//!
//! ```text
//! score = Σ_{u: µ(u,r)>0} σ(u,t) · [ (M+µ)/(B+M+µ) − M/(B+M) ]
//! ```
//!
//! so only users on `r`'s posting list are touched. Because `x ↦ x/(B+x)` is
//! increasing, scores are non-negative: adding an event never decreases an
//! interval's total expected attendance (it *does* cannibalize co-scheduled
//! events — Eq. 4 accounts for that).
//!
//! The aggregates are **not** hash maps, and they are **not** a dense
//! `|T| × union` matrix either. At construction the engine builds a *slot
//! index* over the union of the candidate posting lists: each indexed user
//! gets a dense rank `r ∈ [0, stride)`. Per interval, only the ranks with
//! `σ(u,t) > 0` get a slot: interval `t` owns a compact *column* of those
//! ranks (CSR offsets + rank ids + parallel `B`/`M`/count/`σ` arrays — see
//! the `columns` module), because a `σ = 0` slot is provably inert: every read path
//! multiplies it by `σ`, so its term is `±0.0` and dropping it keeps all
//! results bit-identical to the dense layout. Resident memory is
//! `O(nnz + |T|)` instead of `O(|T|·|union|)`, which is what lets
//! million-user instances build at all (DESIGN.md §11; the original dense
//! layout and its ablation are §2).
//!
//! Each candidate event's posting list is pre-resolved once into `(rank, µ)`
//! pairs, and — for every *partially populated* column — additionally into a
//! contiguous run of `(local_slot, µ)`, so scoring is a linear walk over the
//! run and the column's value arrays with no rank translation in the hot
//! loop. Full columns (every dense-era instance) skip the extra storage
//! entirely: there the rank **is** the local slot and the shared posting
//! list doubles as the run. The walk itself is the explicitly chunked
//! Eq. 4 kernel in the `kernel` module, which batches the independent divisions
//! 4-wide while preserving the scalar left-to-right f64 reduction order —
//! sparse ≡ dense ≡ chunked, bit for bit.
//!
//! On top of the per-pair [`AttendanceEngine::score`], the engine exposes a
//! batch API — [`AttendanceEngine::score_all`] (one event against every
//! interval) and [`AttendanceEngine::score_frontier`] (many events against
//! one interval) — plus `_with` variants that take `&self` and an external
//! [`EngineCounters`], which is what lets the greedy sweeps shard scoring
//! across `std::thread::scope` threads and merge the per-shard counters
//! afterwards (see `algorithms`).
//!
//! The engine keeps the running total utility in sync with every
//! `assign`/`unassign`, so `ΔΩ` equals the assignment score by construction;
//! [`evaluate_schedule`] recomputes Ω from scratch over hash maps and is the
//! testing oracle for both the bookkeeping and the blocked layout.
//!
//! # Dirty-interval generations
//!
//! An Eq. 4 score is a pure function of one interval's column
//! (`B`/`M`/`σ` slices at its CSR range), so a score computed for
//! `(e, t)` stays *bit-exact* until something mutates interval `t`'s
//! column. The engine tracks this with a monotone **mutation clock**: every
//! column mutation (`assign`/`unassign` whose run moves mass, and any
//! [`AttendanceEngine::add_competing_mass`] that lands on a resident slot)
//! advances the clock and stamps the touched interval's **generation** with
//! it. Consumers snapshot the clock, cache scores, and later ask
//! [`AttendanceEngine::dirty_intervals`] which intervals moved — everything
//! else may be reused verbatim. [`AttendanceEngine::rescore_event_at`] is the
//! paired delta API: one fresh Eq. 4 evaluation plus the generation tag it
//! is valid at, which is what the CELF-style lazy greedy stores in its heap
//! entries (see `algorithms::greedy_heap` and DESIGN.md §7).

mod columns;
mod kernel;

use crate::ids::{EventId, IntervalId, UserId};
use crate::instance::{FeasibilityViolation, SesInstance};
use crate::schedule::{Schedule, ScheduleError};
use crate::util::float::luce_ratio;
use crate::util::fxhash::FxHashMap;
use columns::{IntervalColumns, ResolvedRuns};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Rank sentinel for users outside the slot index (no posting anywhere).
const NO_RANK: u32 = u32::MAX;

/// Operation counters, for the paper's complexity claims and the benches.
///
/// These are hardware-independent companions to wall-clock numbers: Fig. 1b/1d
/// shapes can be checked against operation counts directly.
///
/// Counters are plain data. The engine accumulates its own set, and the
/// `_with` scoring methods write into a caller-provided set instead, so
/// parallel sweeps keep one `EngineCounters` per shard and
/// [`merge`](EngineCounters::merge) them when the threads join.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineCounters {
    /// Number of assignment-score evaluations (Eq. 4 computations).
    pub score_evaluations: u64,
    /// Number of posting entries visited while scoring.
    pub posting_visits: u64,
    /// Number of `assign` operations applied.
    pub assigns: u64,
    /// Number of `unassign` operations applied.
    pub unassigns: u64,
}

impl EngineCounters {
    /// Adds another counter set into this one (shard merge).
    pub fn merge(&mut self, other: EngineCounters) {
        self.score_evaluations += other.score_evaluations;
        self.posting_visits += other.posting_visits;
        self.assigns += other.assigns;
        self.unassigns += other.unassigns;
    }

    /// Counter-wise `self − earlier` (saturating), for attributing the work
    /// of one bracketed operation: snapshot before, subtract after.
    pub fn delta_since(&self, earlier: EngineCounters) -> EngineCounters {
        EngineCounters {
            score_evaluations: self
                .score_evaluations
                .saturating_sub(earlier.score_evaluations),
            posting_visits: self.posting_visits.saturating_sub(earlier.posting_visits),
            assigns: self.assigns.saturating_sub(earlier.assigns),
            unassigns: self.unassigns.saturating_sub(earlier.unassigns),
        }
    }

    /// This counter set in the observability vocabulary, ready to attach to
    /// a span ([`ses_obs::SpanGuard::set_ops`]).
    pub fn as_ops(&self) -> ses_obs::OpsDelta {
        ses_obs::OpsDelta {
            score_evaluations: self.score_evaluations,
            posting_visits: self.posting_visits,
            assigns: self.assigns,
            unassigns: self.unassigns,
        }
    }
}

/// Resident-memory and build-cost accounting for the blocked column layout.
///
/// `column_slots` vs `dense_slots` is the layout's headline ratio: the
/// number of `(t, rank)` slots actually resident against what the dense
/// uniform-stride layout would have allocated. All byte counts are exact
/// (element sizes × lengths), so two engines on the same instance report
/// identical values — only `build_millis` is wall-clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineMemoryStats {
    /// Resident `(t, rank)` slots (`nnz` of the activity pattern).
    pub column_slots: u64,
    /// Slots the dense layout would hold: `|T| · stride`.
    pub dense_slots: u64,
    /// Bytes in the column arrays (ranks + offsets + `B`/`M`/`σ`/count).
    pub resident_column_bytes: u64,
    /// Bytes in the per-`(interval, event)` run arrays (zero when every
    /// column is full — dense-era instances pay nothing).
    pub run_bytes: u64,
    /// Wall-clock milliseconds spent building the slot index, columns and
    /// runs. Reporting only — never branched on, never digested.
    pub build_millis: f64,
}

impl EngineMemoryStats {
    /// Total resident bytes of the blocked layout (columns + runs).
    #[inline]
    pub fn total_resident_bytes(&self) -> u64 {
        self.resident_column_bytes + self.run_bytes
    }

    /// Sums another engine's accounting into this one (per-shard session
    /// totals on the server; `build_millis` accumulates, like a CPU-time
    /// counter).
    pub fn merge(&mut self, other: &EngineMemoryStats) {
        self.column_slots += other.column_slots;
        self.dense_slots += other.dense_slots;
        self.resident_column_bytes += other.resident_column_bytes;
        self.run_bytes += other.run_bytes;
        self.build_millis += other.build_millis;
    }
}

/// Incremental attendance/utility engine bound to one instance.
///
/// Owns the evolving [`Schedule`] and a shared handle to its
/// [`SesInstance`], so engines are `Send + Sync + 'static`: they can live in
/// maps, move across threads, and be *shared* immutably by scoped worker
/// threads (all scoring state is plain data — no cells, no locks).
/// (Borrowed `&SesInstance` constructors are gone — wrap the instance in an
/// [`Arc`] once and hand out clones; `SesInstance::builder().build_shared()`
/// does this for you.)
///
/// All mutating operations keep the cached aggregates, the feasibility
/// trackers and the running utility consistent.
pub struct AttendanceEngine {
    inst: Arc<SesInstance>,
    schedule: Schedule,
    /// `rank_of[u]` — the user's dense rank in the slot index, or
    /// [`NO_RANK`] for users outside it.
    rank_of: Vec<u32>,
    /// `resolved[e]` — event `e`'s posting list as `(rank, µ)` pairs.
    resolved: Vec<Box<[(u32, f64)]>>,
    /// The blocked per-interval aggregate columns (`B`/`M`/count/`σ`).
    cols: IntervalColumns,
    /// Per-`(interval, event)` posting runs against partial columns.
    runs: ResolvedRuns,
    /// Construction-time memory/build accounting (immutable thereafter).
    memory: EngineMemoryStats,
    /// Per-interval resources in use.
    used_resources: Vec<f64>,
    /// Per-interval occupied locations (location → occupying event).
    used_locations: Vec<FxHashMap<u32, EventId>>,
    /// The live per-interval resource budget θ. Starts at the instance's
    /// budget; the online layer may move it (capacity changes).
    budget: f64,
    /// Monotone mutation clock: advanced once per column mutation. `0`
    /// means "nothing has ever mutated", so a consumer snapshot taken at
    /// clock `c` is stale for exactly the intervals with `gen[t] > c`.
    clock: u64,
    /// `gen[t]` — the clock value at interval `t`'s most recent column
    /// mutation (its *generation*). Scores tagged with an older generation
    /// are stale; scores tagged with the current one are bit-exact.
    gen: Vec<u64>,
    total_utility: f64,
    counters: EngineCounters,
}

impl AttendanceEngine {
    /// Creates an engine with an empty schedule. Builds the slot index from
    /// the union of the candidate posting lists, pre-resolves every
    /// candidate event's postings to `(rank, µ)` pairs, builds the blocked
    /// `σ`-columns and per-interval runs, and accumulates the competing
    /// masses `B_t` — `O(nnz + |T| + Σ_h |postings(h)|)` plus the run
    /// resolution over partial columns, never a dense `|T|·stride` pass.
    ///
    /// Takes `&Arc` and clones the handle internally — callers keep their
    /// own handle and pay one refcount bump, never a deep copy.
    pub fn new(inst: &Arc<SesInstance>) -> Self {
        // ses-analyze: allow(wall-clock-in-core): build timing is reported in EngineMemoryStats, never branched on or digested
        let build_start = std::time::Instant::now();
        let nt = inst.num_intervals();
        let nu = inst.num_users();
        let interest = inst.interest();

        // Union of *candidate* posting lists → dense ranks, in user-id
        // order. Users appearing only in competing posting lists get no
        // slot: they can never accrue scheduled mass, so every read path
        // (scores, attendances, interval utilities) provably never consults
        // their aggregates — indexing them would only inflate the columns.
        let mut in_index = vec![false; nu];
        for e in 0..inst.num_events() {
            for &(u, _) in interest.interested_users(EventId::new(e as u32).into()) {
                in_index[u.index()] = true;
            }
        }
        let mut rank_of = vec![NO_RANK; nu];
        let mut users: Vec<UserId> = Vec::new();
        for (u, &active) in in_index.iter().enumerate() {
            if active {
                rank_of[u] = users.len() as u32;
                users.push(UserId::new(u as u32));
            }
        }

        // Pre-resolve candidate posting lists to (rank, µ).
        let resolved: Vec<Box<[(u32, f64)]>> = (0..inst.num_events())
            .map(|e| {
                interest
                    .interested_users(EventId::new(e as u32).into())
                    .iter()
                    .map(|&(u, mu)| (rank_of[u.index()], mu))
                    .collect()
            })
            .collect();

        // Blocked σ-columns: only `σ(u,t) > 0` slots are resident.
        let mut cols = IntervalColumns::build(inst.activity(), &users, nt);

        // Competing mass. Competing-only users have no rank and σ = 0 slots
        // have no storage — both are skipped, and both are provably never
        // read (every consumer multiplies by σ, see the module docs).
        for c in inst.competing() {
            let t = c.interval.index();
            for &(u, mu) in interest.interested_users(c.id.into()) {
                let r = rank_of[u.index()];
                if r != NO_RANK {
                    if let Some(i) = cols.slot_of(t, r) {
                        cols.b[i] += mu;
                    }
                }
            }
        }

        let runs = ResolvedRuns::build(&cols, &resolved);
        let memory = EngineMemoryStats {
            column_slots: cols.nnz() as u64,
            dense_slots: nt as u64 * cols.stride as u64,
            resident_column_bytes: cols.resident_bytes(),
            run_bytes: runs.resident_bytes(),
            build_millis: build_start.elapsed().as_secs_f64() * 1e3,
        };

        Self {
            inst: Arc::clone(inst),
            schedule: inst.empty_schedule(),
            rank_of,
            resolved,
            cols,
            runs,
            memory,
            used_resources: vec![0.0; nt],
            used_locations: vec![FxHashMap::default(); nt],
            budget: inst.budget(),
            clock: 0,
            gen: vec![0; nt],
            total_utility: 0.0,
            counters: EngineCounters::default(),
        }
    }

    /// Creates an engine pre-loaded with an existing (feasible) schedule.
    pub fn with_schedule(
        inst: &Arc<SesInstance>,
        schedule: &Schedule,
    ) -> Result<Self, FeasibilityViolation> {
        let mut engine = Self::new(inst);
        for a in schedule.iter() {
            engine.assign(a.event, a.interval)?;
        }
        Ok(engine)
    }

    /// The instance this engine is bound to.
    #[inline]
    pub fn instance(&self) -> &SesInstance {
        &self.inst
    }

    /// The shared handle to the instance (clone it to hand the instance to
    /// another engine, session or thread).
    #[inline]
    pub fn instance_arc(&self) -> &Arc<SesInstance> {
        &self.inst
    }

    /// The current schedule.
    #[inline]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Consumes the engine, returning the schedule.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// The running total utility `Ω(S)` (Eq. 3), maintained incrementally.
    #[inline]
    pub fn total_utility(&self) -> f64 {
        self.total_utility
    }

    /// Operation counters accumulated so far.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// Resident-memory and build-cost accounting for the blocked layout,
    /// fixed at construction (columns never grow or shrink afterwards).
    #[inline]
    pub fn memory_stats(&self) -> EngineMemoryStats {
        self.memory
    }

    /// Number of resident slots in `interval`'s column (its share of the
    /// layout's `nnz`) — the per-interval work estimate the parallel sweeps
    /// use to balance their shards.
    #[inline]
    pub fn column_len(&self, interval: IntervalId) -> usize {
        self.cols.len(interval.index())
    }

    /// Resets the operation counters (the aggregates are untouched).
    pub fn reset_counters(&mut self) {
        self.counters = EngineCounters::default();
    }

    /// Folds a shard's counters into the engine's own set — the merge step
    /// after parallel scoring with the `_with` methods.
    pub fn merge_counters(&mut self, shard: EngineCounters) {
        self.counters.merge(shard);
    }

    /// The current mutation clock. Snapshot it before caching scores; feed
    /// the snapshot to [`Self::dirty_intervals`] later to learn which
    /// intervals (and only which) invalidated their cached scores.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The generation of one interval: the clock value at its most recent
    /// column mutation (`0` if never mutated). A score tagged with an older
    /// generation is stale; one tagged with the current generation is
    /// bit-exact — this is the staleness test of the CELF lazy greedy.
    #[inline]
    pub fn interval_generation(&self, interval: IntervalId) -> u64 {
        self.gen[interval.index()]
    }

    /// Advances the clock and stamps `interval`'s generation — every column
    /// mutation funnels through here.
    #[inline]
    fn touch(&mut self, interval: IntervalId) {
        self.clock += 1;
        self.gen[interval.index()] = self.clock;
    }

    /// The intervals whose columns mutated *after* the clock snapshot
    /// `since`, in ascending interval order. Scores cached at or before
    /// `since` remain bit-exact for every interval **not** returned — the
    /// contract the dirty-filtered GRD rescan and the online repair's score
    /// cache rely on (DESIGN.md §7). Cost: one `O(|T|)` scan, no
    /// per-mutation allocation.
    pub fn dirty_intervals(&self, since: u64) -> Vec<IntervalId> {
        self.gen
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g > since)
            .map(|(t, _)| IntervalId::new(t as u32))
            .collect()
    }

    /// Delta API: one fresh Eq. 4 evaluation of `event → interval`,
    /// returning the score together with the interval generation it is
    /// valid at. Counts like [`Self::score`]. The returned tag is what a
    /// lazy consumer stores next to the score: the pair stays bit-exact
    /// until [`Self::interval_generation`] moves past it.
    pub fn rescore_event_at(&mut self, event: EventId, interval: IntervalId) -> (f64, u64) {
        let score = self.score(event, interval);
        (score, self.gen[interval.index()])
    }

    /// [`Self::rescore_event_at`] against `&self`, counting into `counters`
    /// (shard-safe, like the other `_with` scoring methods).
    pub fn rescore_event_at_with(
        &self,
        event: EventId,
        interval: IntervalId,
        counters: &mut EngineCounters,
    ) -> (f64, u64) {
        let score = self.score_with(event, interval, counters);
        (score, self.gen[interval.index()])
    }

    /// Fast feasibility/validity check for `event → interval` against the
    /// *current* schedule, using the cached per-interval trackers.
    pub fn check_assignment(
        &self,
        event: EventId,
        interval: IntervalId,
    ) -> Result<(), FeasibilityViolation> {
        if self.schedule.contains(event) {
            return Err(FeasibilityViolation::EventAlreadyScheduled { event });
        }
        let ev = self.inst.event(event);
        let ti = interval.index();
        if let Some(&existing) = self.used_locations[ti].get(&ev.location.raw()) {
            return Err(FeasibilityViolation::LocationConflict {
                interval,
                existing,
                incoming: event,
            });
        }
        let used = self.used_resources[ti];
        let budget = self.budget;
        if used + ev.required_resources > budget {
            return Err(FeasibilityViolation::ResourcesExceeded {
                interval,
                used,
                requested: ev.required_resources,
                budget,
            });
        }
        Ok(())
    }

    /// Convenience wrapper over [`Self::check_assignment`].
    #[inline]
    pub fn is_valid(&self, event: EventId, interval: IntervalId) -> bool {
        self.check_assignment(event, interval).is_ok()
    }

    /// The assignment score of `event → interval` w.r.t. the current
    /// schedule (Eq. 4): the gain in total expected attendance from adding
    /// the assignment. Does **not** check feasibility.
    ///
    /// Counts into the engine's own counters; use [`Self::score_with`] from
    /// shared references (parallel shards) with an external counter set.
    pub fn score(&mut self, event: EventId, interval: IntervalId) -> f64 {
        let mut counters = self.counters;
        let s = self.score_with(event, interval, &mut counters);
        self.counters = counters;
        s
    }

    /// [`Self::score`] against `&self`, counting into `counters`. This is
    /// the shard-safe entry point: the engine is `Sync`, so scoped threads
    /// can score concurrently, each with its own counter set.
    ///
    /// `posting_visits` counts the *run* length — on partial columns that is
    /// at most (and on full columns exactly) the posting-list length, so
    /// the counter never grows under the blocked layout.
    pub fn score_with(
        &self,
        event: EventId,
        interval: IntervalId,
        counters: &mut EngineCounters,
    ) -> f64 {
        counters.score_evaluations += 1;
        let t = interval.index();
        let start = self.cols.offsets[t];
        let end = self.cols.offsets[t + 1];
        let run = self.runs.run(
            &self.resolved,
            event.index(),
            t,
            end - start == self.cols.stride,
        );
        counters.posting_visits += run.len() as u64;
        kernel::score_run(
            run,
            &self.cols.b[start..end],
            &self.cols.m[start..end],
            &self.cols.sigma[start..end],
        )
    }

    /// Batch Eq. 4: scores `event` against **every** interval in one call
    /// (index `t` of the result is interval `t`). Equivalent to, and counted
    /// like, `|T|` calls to [`Self::score`].
    pub fn score_all(&mut self, event: EventId) -> Vec<f64> {
        let mut counters = self.counters;
        let out = self.score_all_with(event, &mut counters);
        self.counters = counters;
        out
    }

    /// [`Self::score_all`] against `&self` with an external counter set.
    pub fn score_all_with(&self, event: EventId, counters: &mut EngineCounters) -> Vec<f64> {
        (0..self.inst.num_intervals())
            .map(|t| self.score_with(event, IntervalId::new(t as u32), counters))
            .collect()
    }

    /// Batch Eq. 4: scores many candidate events against **one** interval
    /// (result is parallel to `events`). The greedy update pass uses this to
    /// rescore an interval's frontier after a commit.
    pub fn score_frontier(&mut self, events: &[EventId], interval: IntervalId) -> Vec<f64> {
        let mut counters = self.counters;
        let out = self.score_frontier_with(events, interval, &mut counters);
        self.counters = counters;
        out
    }

    /// [`Self::score_frontier`] against `&self` with an external counter set.
    pub fn score_frontier_with(
        &self,
        events: &[EventId],
        interval: IntervalId,
        counters: &mut EngineCounters,
    ) -> Vec<f64> {
        events
            .iter()
            .map(|&e| self.score_with(e, interval, counters))
            .collect()
    }

    /// Applies `event → interval` if it is a *valid* assignment; returns the
    /// realized gain (equal to [`Self::score`] at the moment of application).
    pub fn assign(
        &mut self,
        event: EventId,
        interval: IntervalId,
    ) -> Result<f64, FeasibilityViolation> {
        self.check_assignment(event, interval)?;
        Ok(self.apply_assign(event, interval))
    }

    /// Re-applies `event → interval` *without* the resource check, for
    /// putting an event back into the slot it was just unassigned from.
    ///
    /// `(used − ξ) + ξ` can land one ulp above `used`, so a strict re-check
    /// of a vacated home slot that was exactly at budget may spuriously
    /// fail; restoring the previous state must never do that. The location
    /// must still be free and the event unscheduled (debug-asserted).
    pub(crate) fn assign_restored(&mut self, event: EventId, interval: IntervalId) -> f64 {
        debug_assert!(!self.schedule.contains(event));
        debug_assert!(
            !self.used_locations[interval.index()]
                .contains_key(&self.inst.event(event).location.raw()),
            "assign_restored requires a free location"
        );
        self.apply_assign(event, interval)
    }

    fn apply_assign(&mut self, event: EventId, interval: IntervalId) -> f64 {
        let gain = self.score(event, interval);
        self.schedule
            .assign(event, interval)
            .expect("validated assignment must apply");
        let t = interval.index();
        let start = self.cols.offsets[t];
        let full = self.cols.offsets[t + 1] - start == self.cols.stride;
        let run = self.runs.run(&self.resolved, event.index(), t, full);
        // A run that moves no mass (empty posting list, or every posting
        // aimed at a σ = 0 user) leaves the column bit-identical: validity
        // state changes but no score can, so the generation stays put
        // (validity is always re-checked fresh by consumers — only scores
        // are cached).
        let touched = !run.is_empty();
        for &(slot, mu) in run {
            let i = start + slot as usize;
            self.cols.m[i] += mu;
            self.cols.mcount[i] += 1;
        }
        if touched {
            self.touch(interval);
        }
        let ev = self.inst.event(event);
        self.used_resources[t] += ev.required_resources;
        self.used_locations[t].insert(ev.location.raw(), event);
        self.total_utility += gain;
        self.counters.assigns += 1;
        gain
    }

    /// Removes `event` from the schedule; returns the utility *loss* (the
    /// positive amount by which Ω decreased). Used by local search.
    pub fn unassign(&mut self, event: EventId) -> Result<f64, ScheduleError> {
        let interval = self.schedule.unassign(event)?;
        let t = interval.index();
        let start = self.cols.offsets[t];
        let full = self.cols.offsets[t + 1] - start == self.cols.stride;
        let run = self.runs.run(&self.resolved, event.index(), t, full);
        let touched = !run.is_empty();
        let mut loss = 0.0;
        for &(slot, mu) in run {
            let i = start + slot as usize;
            let (b, m) = (self.cols.b[i], self.cols.m[i]);
            debug_assert!(
                self.cols.mcount[i] > 0,
                "posting user must have a mass entry while assigned"
            );
            self.cols.mcount[i] -= 1;
            // Snap to exactly zero when the last contributor leaves: the
            // Luce ratio `M/(B+M)` is scale-invariant, so with `B = 0` a
            // floating-point residue of `1e-16` left in `M` would evaluate
            // to `1.0` — a whole phantom user of utility. The count makes
            // unassign an exact inverse of assign.
            let m_new = if self.cols.mcount[i] == 0 {
                0.0
            } else {
                (m - mu).max(0.0)
            };
            self.cols.m[i] = m_new;
            let before = luce_ratio(m, b + m);
            let after = luce_ratio(m_new, b + m_new);
            loss += self.cols.sigma[i] * (before - after);
        }
        if touched {
            self.touch(interval);
        }
        let ev = self.inst.event(event);
        self.used_resources[t] = (self.used_resources[t] - ev.required_resources).max(0.0);
        self.used_locations[t].remove(&ev.location.raw());
        self.total_utility -= loss;
        self.counters.unassigns += 1;
        Ok(loss)
    }

    /// The attendance probability `ρ(u, e, t_e(S))` (Eq. 1) of a *scheduled*
    /// event; `None` if `e` is not scheduled.
    pub fn attendance_probability(&self, user: UserId, event: EventId) -> Option<f64> {
        let interval = self.schedule.interval_of(event)?;
        let mu = self.inst.mu(user, event);
        // No rank or no slot → the user holds no aggregates here: either no
        // candidate interest anywhere, or σ(u,t) = 0 at this interval — the
        // σ factor below zeroes the probability in the latter case exactly
        // as the dense layout did.
        let (b, m) = match self.rank_of.get(user.index()) {
            Some(&r) if r != NO_RANK => match self.cols.slot_of(interval.index(), r) {
                Some(i) => (self.cols.b[i], self.cols.m[i]),
                None => (0.0, 0.0),
            },
            _ => (0.0, 0.0),
        };
        Some(self.inst.sigma(user, interval) * luce_ratio(mu, b + m))
    }

    /// The expected attendance `ω(e, t_e(S))` (Eq. 2) of a *scheduled* event;
    /// `None` if `e` is not scheduled.
    pub fn expected_attendance(&self, event: EventId) -> Option<f64> {
        let interval = self.schedule.interval_of(event)?;
        let t = interval.index();
        let start = self.cols.offsets[t];
        let full = self.cols.offsets[t + 1] - start == self.cols.stride;
        let run = self.runs.run(&self.resolved, event.index(), t, full);
        let mut sum = 0.0;
        for &(slot, mu) in run {
            let i = start + slot as usize;
            sum += self.cols.sigma[i] * luce_ratio(mu, self.cols.b[i] + self.cols.m[i]);
        }
        Some(sum)
    }

    /// Total expected attendance of one interval: `Σ_{e ∈ E_t(S)} ω(e,t)`.
    pub fn interval_utility(&self, interval: IntervalId) -> f64 {
        let t = interval.index();
        let mut sum = 0.0;
        for i in self.cols.offsets[t]..self.cols.offsets[t + 1] {
            let m = self.cols.m[i];
            if m > 0.0 {
                sum += self.cols.sigma[i] * luce_ratio(m, self.cols.b[i] + m);
            }
        }
        sum
    }

    /// Resources currently used at `interval`.
    #[inline]
    pub fn used_resources(&self, interval: IntervalId) -> f64 {
        self.used_resources[interval.index()]
    }

    /// The live per-interval resource budget θ (the instance's budget unless
    /// the online layer has moved it with [`Self::set_budget`]).
    #[inline]
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Overrides the per-interval resource budget θ for all *future*
    /// feasibility checks — the organizer gained or lost capacity after
    /// publication (the online setting; see [`crate::online`]).
    ///
    /// Existing assignments are left untouched even if the new budget no
    /// longer covers them; the online layer owns eviction policy (and
    /// sanitization — a NaN here would disable resource checks entirely).
    pub fn set_budget(&mut self, budget: f64) {
        debug_assert!(
            budget.is_finite() && budget >= 0.0,
            "engine budget must be finite and non-negative, got {budget}"
        );
        self.budget = budget;
    }

    /// Injects additional competing mass at `interval` — a third-party event
    /// announced *after* the instance was built (the online setting; see
    /// [`crate::online`]). `postings` lists the interested users with their
    /// `µ(u, c) ∈ [0,1]`, like an inverted-index row.
    ///
    /// Returns the (non-positive) change in total utility: every scheduled
    /// event at the interval loses attendance to the newcomer. The engine's
    /// aggregates stay authoritative; the underlying instance is unchanged.
    ///
    /// Users outside the slot index are skipped (no interest in any
    /// candidate → scheduled mass permanently zero), and so are indexed
    /// users with `σ(u, interval) = 0` (no resident slot → every consumer
    /// multiplies their aggregates by zero). Neither can change any score
    /// or probability.
    pub fn add_competing_mass(&mut self, interval: IntervalId, postings: &[(UserId, f64)]) -> f64 {
        let t = interval.index();
        let mut delta = 0.0;
        let mut touched = false;
        for &(u, mu_c) in postings {
            debug_assert!((0.0..=1.0).contains(&mu_c), "competing µ out of range");
            let Some(&r) = self.rank_of.get(u.index()) else {
                continue;
            };
            if r == NO_RANK || mu_c <= 0.0 {
                continue;
            }
            let Some(i) = self.cols.slot_of(t, r) else {
                continue;
            };
            let b_old = self.cols.b[i];
            self.cols.b[i] = b_old + mu_c;
            touched = true;
            let m = self.cols.m[i];
            if m > 0.0 {
                let before = luce_ratio(m, b_old + m);
                let after = luce_ratio(m, b_old + mu_c + m);
                delta += self.cols.sigma[i] * (after - before);
            }
        }
        // Only a landed posting dirties the interval: mass aimed entirely at
        // absent slots leaves the column bit-identical, so cached scores for
        // the interval stay valid.
        if touched {
            self.touch(interval);
        }
        self.total_utility += delta;
        delta
    }
}

/// Per-event attendance report of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Total utility `Ω(S)`.
    pub total_utility: f64,
    /// `(event, interval, ω(e,t))` for every assignment, in event order.
    pub per_event: Vec<(EventId, IntervalId, f64)>,
}

/// From-scratch reference evaluation of a schedule (independent of the
/// incremental engine *and* of its blocked column layout — this path
/// deliberately keeps the original per-interval hash-map aggregation, so it
/// doubles as the oracle for the slot index and the sparse columns).
///
/// Cost: `O(Σ_{h ∈ C ∪ E(S)} |postings(h)|)`.
pub fn evaluate_schedule(inst: &SesInstance, schedule: &Schedule) -> Evaluation {
    let nt = inst.num_intervals();
    // Denominator per (interval, user): competing mass + scheduled mass.
    let mut denom: Vec<FxHashMap<UserId, f64>> = vec![FxHashMap::default(); nt];
    for c in inst.competing() {
        for &(u, mu) in inst.interest().interested_users(c.id.into()) {
            *denom[c.interval.index()].entry(u).or_insert(0.0) += mu;
        }
    }
    for a in schedule.iter() {
        for &(u, mu) in inst.interest().interested_users(a.event.into()) {
            *denom[a.interval.index()].entry(u).or_insert(0.0) += mu;
        }
    }
    let mut per_event = Vec::with_capacity(schedule.len());
    let mut total = 0.0;
    for a in schedule.iter() {
        let ti = a.interval.index();
        let mut omega = 0.0;
        for &(u, mu) in inst.interest().interested_users(a.event.into()) {
            let d = denom[ti].get(&u).copied().unwrap_or(0.0);
            omega += inst.sigma(u, a.interval) * luce_ratio(mu, d);
        }
        per_event.push((a.event, a.interval, omega));
        total += omega;
    }
    Evaluation {
        total_utility: total,
        per_event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{ConstantActivity, DenseActivity};
    use crate::ids::LocationId;
    use crate::interest::InterestBuilder;
    use crate::model::{uniform_grid, CandidateEvent, Organizer};
    use crate::util::float::{approx_eq, approx_ge};

    /// The hand-verifiable instance shared with the rest of the test suite
    /// (see [`crate::testkit::hand_instance`] for the exact µ/σ/θ values).
    fn inst() -> Arc<SesInstance> {
        crate::testkit::hand_instance()
    }

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }
    fn t(i: u32) -> IntervalId {
        IntervalId::new(i)
    }
    fn u(i: u32) -> UserId {
        UserId::new(i)
    }

    /// 3 users × 2 intervals × 2 events with σ = 0 holes: user 0 sleeps at
    /// t1, user 2 sleeps at t0 — so both columns are *partial* and every
    /// engine path exercises the run translation instead of the full-column
    /// alias.
    fn sparse_inst() -> Arc<SesInstance> {
        let mut interest = InterestBuilder::new(3, 2, 0);
        interest.set(u(0), e(0), 0.8).unwrap();
        interest.set(u(1), e(0), 0.3).unwrap();
        interest.set(u(2), e(0), 0.6).unwrap();
        interest.set(u(1), e(1), 0.5).unwrap();
        interest.set(u(2), e(1), 0.9).unwrap();
        SesInstance::builder()
            .organizer(Organizer::new(10.0))
            .intervals(uniform_grid(2, 10))
            .events(vec![
                CandidateEvent::new(e(0), LocationId::new(0), 1.0),
                CandidateEvent::new(e(1), LocationId::new(1), 1.0),
            ])
            .interest(interest.build_sparse().unwrap())
            .activity(
                DenseActivity::from_rows(vec![vec![0.9, 0.0], vec![0.7, 0.6], vec![0.0, 0.8]])
                    .unwrap(),
            )
            .build_shared()
            .unwrap()
    }

    #[test]
    fn empty_schedule_has_zero_utility() {
        let inst = inst();
        let engine = AttendanceEngine::new(&inst);
        assert_eq!(engine.total_utility(), 0.0);
        assert_eq!(engine.schedule().len(), 0);
    }

    #[test]
    fn score_on_empty_interval_matches_hand_computation() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        // e0 → t0: user0 only; B = 0.5 (c0), M = 0.
        // score = 1 * (0.8 / (0.5 + 0.8)) = 0.8/1.3.
        let s = engine.score(e(0), t(0));
        assert!(approx_eq(s, 0.8 / 1.3), "got {s}");
        // e0 → t1: no competing events, so ρ = µ/µ = 1 → score = 1.
        let s = engine.score(e(0), t(1));
        assert!(approx_eq(s, 1.0), "got {s}");
    }

    #[test]
    fn batch_scoring_matches_per_pair_scoring() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        for ev in [e(1), e(2)] {
            let all = engine.score_all(ev);
            assert_eq!(all.len(), inst.num_intervals());
            for (ti, &s) in all.iter().enumerate() {
                assert_eq!(s, engine.score(ev, t(ti as u32)), "event {ev} t{ti}");
            }
        }
        let frontier = engine.score_frontier(&[e(1), e(2)], t(0));
        assert_eq!(frontier[0], engine.score(e(1), t(0)));
        assert_eq!(frontier[1], engine.score(e(2), t(0)));
    }

    #[test]
    fn batch_scoring_counts_like_per_pair_scoring() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.score_all(e(1));
        let batch = engine.counters();
        engine.reset_counters();
        for ti in 0..inst.num_intervals() {
            engine.score(e(1), t(ti as u32));
        }
        assert_eq!(engine.counters(), batch);
    }

    #[test]
    fn shard_counters_merge_into_engine() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        let mut shard = EngineCounters::default();
        engine.score_with(e(0), t(0), &mut shard);
        engine.score_all_with(e(1), &mut shard);
        assert_eq!(engine.counters(), EngineCounters::default());
        engine.merge_counters(shard);
        let c = engine.counters();
        assert_eq!(c.score_evaluations, 1 + inst.num_intervals() as u64);
        assert!(c.posting_visits > 0);
    }

    #[test]
    fn assign_gain_equals_prior_score_and_updates_utility() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        let predicted = engine.score(e(0), t(0));
        let gain = engine.assign(e(0), t(0)).unwrap();
        assert!(approx_eq(predicted, gain));
        assert!(approx_eq(engine.total_utility(), gain));
        let eval = evaluate_schedule(&inst, engine.schedule());
        assert!(approx_eq(eval.total_utility, engine.total_utility()));
    }

    #[test]
    fn score_accounts_for_cannibalization() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        // Adding e1 to t0: user0 shares both events → e0's attendance drops.
        // Score must equal ΔΩ exactly.
        let before = engine.total_utility();
        let predicted = engine.score(e(1), t(0));
        engine.assign(e(1), t(0)).unwrap();
        let after = engine.total_utility();
        assert!(approx_eq(after - before, predicted));
        // Hand computation:
        //   user0: B=0.5, M=0.8 → Δ = (1.2/1.7) − (0.8/1.3)
        //   user1: B=0, M=0 → Δ = 0.5/0.5 = 1
        let expected = (1.2f64 / 1.7 - 0.8 / 1.3) + 1.0;
        assert!(approx_eq(predicted, expected), "{predicted} vs {expected}");
    }

    #[test]
    fn scores_are_nonnegative_and_diminish_within_interval() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        let s_before = engine.score(e(1), t(0));
        engine.assign(e(0), t(0)).unwrap();
        let s_after = engine.score(e(1), t(0));
        assert!(s_before >= 0.0 && s_after >= 0.0);
        assert!(
            s_after <= s_before + 1e-12,
            "marginal gain must not increase as the interval fills: {s_before} -> {s_after}"
        );
    }

    #[test]
    fn incremental_matches_reference_after_many_ops() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        engine.assign(e(1), t(0)).unwrap();
        engine.assign(e(2), t(1)).unwrap();
        engine.unassign(e(1)).unwrap();
        engine.assign(e(1), t(1)).unwrap();
        engine.unassign(e(0)).unwrap();
        engine.assign(e(0), t(1)).unwrap();
        let eval = evaluate_schedule(&inst, engine.schedule());
        assert!(
            approx_eq(eval.total_utility, engine.total_utility()),
            "incremental {} vs reference {}",
            engine.total_utility(),
            eval.total_utility
        );
    }

    #[test]
    fn unassign_snaps_mass_to_exact_zero() {
        // Regression test: M/(B+M) is scale-invariant, so with B = 0 a float
        // residue (e.g. 1.1 − 0.6 − 0.5 ≈ 1e-16) left in M after unassigns
        // would evaluate to a full phantom attendance of 1.0. The engine must
        // therefore be an exact no-op after any assign/unassign round trip.
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(1), t(0)).unwrap(); // µ(u1,e1) = 0.5, B(u1,t0) = 0
        engine.assign(e(2), t(0)).unwrap(); // µ(u1,e2) = 0.6 → M(u1) = 1.1
        engine.unassign(e(2)).unwrap();
        engine.unassign(e(1)).unwrap();
        assert_eq!(
            engine.total_utility(),
            0.0,
            "empty schedule must have exactly zero utility, no residue"
        );
        // And a fresh assignment still scores exactly as on a fresh engine.
        let mut fresh = AttendanceEngine::new(&inst);
        assert_eq!(engine.score(e(1), t(0)), fresh.score(e(1), t(0)));
    }

    #[test]
    fn unassign_restores_previous_utility() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        let before = engine.total_utility();
        engine.assign(e(1), t(0)).unwrap();
        let loss = engine.unassign(e(1)).unwrap();
        assert!(loss > 0.0);
        assert!(approx_eq(engine.total_utility(), before));
    }

    #[test]
    fn attendance_probability_and_expected_attendance() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        assert_eq!(engine.attendance_probability(u(0), e(0)), None);
        engine.assign(e(0), t(0)).unwrap();
        // ρ(u0, e0) = 0.8 / (0.5 + 0.8)
        let rho = engine.attendance_probability(u(0), e(0)).unwrap();
        assert!(approx_eq(rho, 0.8 / 1.3));
        // u1 has µ = 0 for e0 → ρ = 0 (denominator for u1 at t0 is 0 → 0/0 := 0).
        let rho1 = engine.attendance_probability(u(1), e(0)).unwrap();
        assert_eq!(rho1, 0.0);
        let omega = engine.expected_attendance(e(0)).unwrap();
        assert!(approx_eq(omega, 0.8 / 1.3));
        assert!(approx_eq(engine.interval_utility(t(0)), omega));
    }

    #[test]
    fn per_user_total_attendance_probability_bounded_by_sigma() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        engine.assign(e(1), t(0)).unwrap();
        for user in [u(0), u(1)] {
            let total: f64 = [e(0), e(1)]
                .iter()
                .map(|&ev| engine.attendance_probability(user, ev).unwrap())
                .sum();
            let sigma = inst.sigma(user, t(0));
            assert!(
                total <= sigma + 1e-12,
                "user {user}: Σρ = {total} > σ = {sigma}"
            );
        }
    }

    #[test]
    fn feasibility_checks_use_cached_state() {
        // Rebuild inst with clashing locations to exercise the fast checker.
        let mut interest = InterestBuilder::new(1, 2, 0);
        interest.set(u(0), e(0), 0.5).unwrap();
        interest.set(u(0), e(1), 0.5).unwrap();
        let inst = SesInstance::builder()
            .organizer(Organizer::new(1.5))
            .intervals(uniform_grid(1, 10))
            .events(vec![
                CandidateEvent::new(e(0), LocationId::new(0), 1.0),
                CandidateEvent::new(e(1), LocationId::new(0), 1.0),
            ])
            .interest(interest.build_sparse().unwrap())
            .activity(ConstantActivity::new(1, 1, 1.0).unwrap())
            .build_shared()
            .unwrap();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        let err = engine.assign(e(1), t(0)).unwrap_err();
        assert!(matches!(err, FeasibilityViolation::LocationConflict { .. }));
        // After unassigning, the location frees up but resources reset too.
        engine.unassign(e(0)).unwrap();
        assert!(engine.is_valid(e(1), t(0)));
        assert_eq!(engine.used_resources(t(0)), 0.0);
    }

    #[test]
    fn with_schedule_preloads_state() {
        let inst = inst();
        let mut s = inst.empty_schedule();
        s.assign(e(0), t(0)).unwrap();
        s.assign(e(2), t(1)).unwrap();
        let engine = AttendanceEngine::with_schedule(&inst, &s).unwrap();
        let eval = evaluate_schedule(&inst, &s);
        assert!(approx_eq(engine.total_utility(), eval.total_utility));
        assert_eq!(engine.schedule().len(), 2);
    }

    #[test]
    fn counters_track_operations() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.score(e(0), t(0));
        engine.assign(e(1), t(1)).unwrap(); // internal score counts too
        let c = engine.counters();
        assert_eq!(c.score_evaluations, 2);
        assert_eq!(c.assigns, 1);
        assert!(c.posting_visits >= 2);
        engine.reset_counters();
        assert_eq!(engine.counters(), EngineCounters::default());
    }

    #[test]
    fn add_competing_mass_shifts_attendance_down() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(1)).unwrap(); // u0, no competition at t1 → ρ = 1
        let before = engine.total_utility();
        assert!(approx_eq(before, 1.0));
        // A rival show at t1 that u0 likes with µ = 0.8.
        let delta = engine.add_competing_mass(t(1), &[(u(0), 0.8)]);
        assert!(delta < 0.0);
        // New ρ(u0, e0) = 0.8 / (0.8 + 0.8) = 0.5.
        assert!(approx_eq(engine.total_utility(), 0.5));
        assert!(approx_eq(
            engine.attendance_probability(u(0), e(0)).unwrap(),
            0.5
        ));
        // Scores seen by future assignments account for the new mass.
        let s = engine.score(e(1), t(1));
        let eval = evaluate_schedule(&inst, engine.schedule());
        // The reference evaluator knows nothing of the dynamic event, so it
        // must now *disagree* — the engine is authoritative online.
        assert!(eval.total_utility > engine.total_utility());
        assert!(s >= 0.0);
    }

    #[test]
    fn add_competing_mass_for_uninterested_users_is_free() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        let before = engine.total_utility();
        // u1 has no interest in e0; extra competition for u1 changes nothing.
        let delta = engine.add_competing_mass(t(0), &[(u(1), 0.9)]);
        assert_eq!(delta, 0.0);
        assert_eq!(engine.total_utility(), before);
    }

    #[test]
    fn add_competing_mass_skips_users_outside_the_slot_index() {
        // Users without a candidate posting get no slot — u1 is interested
        // only in a competing event (its static B must be silently dropped
        // at construction), u2 posts nothing at all. Mass aimed at either
        // (or at an out-of-universe id) must be a no-op, not a panic.
        use crate::ids::CompetingEventId;
        use crate::model::CompetingEvent;
        let mut interest = InterestBuilder::new(3, 1, 1);
        interest.set(u(0), e(0), 0.5).unwrap();
        interest.set(u(1), CompetingEventId::new(0), 0.9).unwrap();
        let inst = SesInstance::builder()
            .organizer(Organizer::new(5.0))
            .intervals(uniform_grid(1, 10))
            .events(vec![CandidateEvent::new(e(0), LocationId::new(0), 1.0)])
            .competing(vec![CompetingEvent::new(
                CompetingEventId::new(0),
                IntervalId::new(0),
            )])
            .interest(interest.build_sparse().unwrap())
            .activity(ConstantActivity::new(3, 1, 1.0).unwrap())
            .build_shared()
            .unwrap();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        let before = engine.total_utility();
        let delta = engine.add_competing_mass(t(0), &[(u(1), 0.7), (u(2), 0.3)]);
        assert_eq!(delta, 0.0);
        assert_eq!(engine.total_utility(), before);
        // Mixed postings still apply the indexed user's share.
        let delta = engine.add_competing_mass(t(0), &[(u(1), 0.7), (u(0), 0.5)]);
        assert!(delta < 0.0);
    }

    #[test]
    fn generations_track_column_mutations_only() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        assert_eq!(engine.clock(), 0);
        assert_eq!(engine.interval_generation(t(0)), 0);
        assert!(engine.dirty_intervals(0).is_empty());

        // assign bumps the assigned interval, nothing else.
        engine.assign(e(0), t(0)).unwrap();
        let c1 = engine.clock();
        assert!(c1 > 0);
        assert_eq!(engine.interval_generation(t(0)), c1);
        assert_eq!(engine.interval_generation(t(1)), 0);
        assert_eq!(engine.dirty_intervals(0), vec![t(0)]);

        // Scores and snapshots after the bump see a clean world again.
        let snap = engine.clock();
        assert!(engine.dirty_intervals(snap).is_empty());

        // unassign bumps the vacated interval.
        engine.unassign(e(0)).unwrap();
        assert_eq!(engine.dirty_intervals(snap), vec![t(0)]);
        assert!(engine.clock() > snap);

        // Two intervals mutate → both report dirty, ascending order.
        let snap = engine.clock();
        engine.assign(e(2), t(1)).unwrap();
        engine.assign(e(0), t(0)).unwrap();
        assert_eq!(engine.dirty_intervals(snap), vec![t(0), t(1)]);
    }

    #[test]
    fn competing_mass_dirties_only_on_landed_postings() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        let snap = engine.clock();
        // u0 is indexed: the injection lands and dirties t1.
        engine.add_competing_mass(t(1), &[(u(0), 0.4)]);
        assert_eq!(engine.dirty_intervals(snap), vec![t(1)]);

        // An injection entirely outside the slot index leaves every column
        // bit-identical, so the interval must stay clean.
        let snap = engine.clock();
        engine.add_competing_mass(t(0), &[(UserId::new(999), 0.7)]);
        assert!(engine.dirty_intervals(snap).is_empty());
        assert_eq!(engine.clock(), snap);
    }

    #[test]
    fn rescore_event_at_returns_score_and_valid_generation() {
        let inst = inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        let (score, generation) = engine.rescore_event_at(e(1), t(0));
        assert_eq!(score.to_bits(), engine.score(e(1), t(0)).to_bits());
        assert_eq!(generation, engine.interval_generation(t(0)));
        // The shard-safe variant agrees bit for bit and counts externally.
        let mut shard = EngineCounters::default();
        let (s2, g2) = engine.rescore_event_at_with(e(1), t(0), &mut shard);
        assert_eq!(s2.to_bits(), score.to_bits());
        assert_eq!(g2, generation);
        assert_eq!(shard.score_evaluations, 1);
        // A later mutation of the interval invalidates the tag.
        engine.assign(e(1), t(0)).unwrap();
        assert!(engine.interval_generation(t(0)) > generation);
    }

    #[test]
    fn evaluate_schedule_reports_per_event() {
        let inst = inst();
        let mut s = inst.empty_schedule();
        s.assign(e(0), t(0)).unwrap();
        s.assign(e(1), t(0)).unwrap();
        let eval = evaluate_schedule(&inst, &s);
        assert_eq!(eval.per_event.len(), 2);
        let total: f64 = eval.per_event.iter().map(|(_, _, w)| w).sum();
        assert!(approx_eq(total, eval.total_utility));
        // Greater utility than scheduling e0 alone (score non-negativity).
        let mut s1 = inst.empty_schedule();
        s1.assign(e(0), t(0)).unwrap();
        assert!(approx_ge(
            eval.total_utility,
            evaluate_schedule(&inst, &s1).total_utility
        ));
    }

    #[test]
    fn sparse_columns_match_oracle_bitwise() {
        // Partial columns on both intervals; the incremental engine must
        // agree with the hash-map oracle *bitwise*, per event and in total.
        let inst = sparse_inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(0)).unwrap();
        engine.assign(e(1), t(0)).unwrap();
        let eval = evaluate_schedule(&inst, engine.schedule());
        for &(ev, _, omega) in &eval.per_event {
            let engine_omega = engine.expected_attendance(ev).unwrap();
            assert_eq!(engine_omega.to_bits(), omega.to_bits(), "event {ev}");
        }
        assert!(approx_eq(engine.total_utility(), eval.total_utility));
        // Move an event across intervals; agreement must survive mutation.
        engine.unassign(e(1)).unwrap();
        engine.assign(e(1), t(1)).unwrap();
        let eval = evaluate_schedule(&inst, engine.schedule());
        assert!(approx_eq(engine.total_utility(), eval.total_utility));
        // Round-trip back to empty is an exact zero (sparse zero-snap).
        engine.unassign(e(0)).unwrap();
        engine.unassign(e(1)).unwrap();
        assert_eq!(engine.total_utility(), 0.0);
    }

    #[test]
    fn sparse_posting_visits_never_exceed_posting_lists() {
        let inst = sparse_inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.score_all(e(0));
        engine.score_all(e(1));
        // Dense layout would visit |postings| per (event, interval): 3+2
        // postings × 2 intervals = 10. Sparse runs drop the σ = 0 entries.
        let c = engine.counters();
        assert!(
            c.posting_visits < 10,
            "sparse visits {} must be under the dense 10",
            c.posting_visits
        );
        // e0 at t0 sees u0,u1 (u2 sleeps) = 2; at t1 sees u1,u2 (u0 sleeps) = 2.
        // e1 at t0 sees u1 (u2 sleeps) = 1; at t1 sees u1,u2 = 2. Total 7.
        assert_eq!(c.posting_visits, 7);
    }

    #[test]
    fn sparse_attendance_probability_zeroes_inactive_users() {
        let inst = sparse_inst();
        let mut engine = AttendanceEngine::new(&inst);
        engine.assign(e(0), t(1)).unwrap();
        // u0 is interested in e0 but inactive at t1 → ρ = 0 exactly.
        assert_eq!(engine.attendance_probability(u(0), e(0)), Some(0.0));
        // u1 is active at t1 and alone in e0's denominator there.
        let rho = engine.attendance_probability(u(1), e(0)).unwrap();
        assert!(rho > 0.0);
    }

    #[test]
    fn memory_stats_report_sub_dense_residency() {
        let sparse = sparse_inst();
        let engine = AttendanceEngine::new(&sparse);
        let m = engine.memory_stats();
        // 3 indexed users × 2 intervals = 6 dense slots; 2 σ-holes → 4.
        assert_eq!(m.dense_slots, 6);
        assert_eq!(m.column_slots, 4);
        assert_eq!(engine.column_len(t(0)) + engine.column_len(t(1)), 4);
        assert!(m.resident_column_bytes > 0);
        assert!(m.run_bytes > 0, "partial columns need run storage");
        assert!(m.build_millis >= 0.0);
        assert_eq!(
            m.total_resident_bytes(),
            m.resident_column_bytes + m.run_bytes
        );

        // A fully dense instance keeps column_slots == dense_slots and pays
        // zero run bytes (runs alias the shared posting lists).
        let dense_inst = inst();
        let dense = AttendanceEngine::new(&dense_inst);
        let dm = dense.memory_stats();
        assert_eq!(dm.column_slots, dm.dense_slots);
        assert_eq!(dm.run_bytes, 0);

        // Merge accumulates (the server's per-shard session totals).
        let mut sum = m;
        sum.merge(&dm);
        assert_eq!(sum.column_slots, m.column_slots + dm.column_slots);
        assert_eq!(
            sum.resident_column_bytes,
            m.resident_column_bytes + dm.resident_column_bytes
        );
    }

    #[test]
    fn assign_with_fully_inactive_postings_keeps_generation_clean() {
        // Event e0's only fan (u0) sleeps at t1 in this universe: assigning
        // e0 → t1 moves no mass, so the generation must stay put, and the
        // empty run scores exactly zero.
        let mut interest = InterestBuilder::new(2, 1, 0);
        interest.set(u(0), e(0), 0.7).unwrap();
        let inst = SesInstance::builder()
            .organizer(Organizer::new(5.0))
            .intervals(uniform_grid(2, 10))
            .events(vec![CandidateEvent::new(e(0), LocationId::new(0), 1.0)])
            .interest(interest.build_sparse().unwrap())
            .activity(DenseActivity::from_rows(vec![vec![0.8, 0.0], vec![0.0, 0.0]]).unwrap())
            .build_shared()
            .unwrap();
        let mut engine = AttendanceEngine::new(&inst);
        assert_eq!(engine.score(e(0), t(1)), 0.0);
        engine.assign(e(0), t(1)).unwrap();
        assert_eq!(engine.clock(), 0, "no column mutated, clock must not move");
        assert_eq!(engine.total_utility(), 0.0);
        assert_eq!(engine.expected_attendance(e(0)), Some(0.0));
        engine.unassign(e(0)).unwrap();
        assert_eq!(engine.clock(), 0);
        // The same event at the active interval does move the clock.
        engine.assign(e(0), t(0)).unwrap();
        assert!(engine.clock() > 0);
    }
}
