//! Schedules and assignments (paper §II, "Schedule & Assignment").
//!
//! A [`Schedule`] is a set of assignments `α_e^t` with at most one assignment
//! per event. This module is pure bookkeeping; feasibility (location and
//! resource constraints) is defined by the instance and checked by
//! [`SesInstance`](crate::instance::SesInstance) /
//! [`AttendanceEngine`](crate::engine::AttendanceEngine).

use crate::ids::{EventId, IntervalId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single assignment `α_e^t`: candidate event `e` scheduled at interval `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Assignment {
    /// The scheduled candidate event.
    pub event: EventId,
    /// The interval it is assigned to.
    pub interval: IntervalId,
}

impl Assignment {
    /// Creates an assignment.
    #[inline]
    pub fn new(event: EventId, interval: IntervalId) -> Self {
        Self { event, interval }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "α({}→{})", self.event, self.interval)
    }
}

/// Errors from schedule mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The event is already assigned (schedules hold at most one assignment
    /// per event).
    AlreadyAssigned {
        /// The event in question.
        event: EventId,
        /// Where it currently sits.
        current: IntervalId,
    },
    /// The event is not assigned (cannot unassign).
    NotAssigned {
        /// The event in question.
        event: EventId,
    },
    /// Event id outside the schedule's universe.
    EventOutOfBounds {
        /// The event in question.
        event: EventId,
        /// The declared number of candidate events.
        num_events: usize,
    },
    /// Interval id outside the schedule's universe.
    IntervalOutOfBounds {
        /// The interval in question.
        interval: IntervalId,
        /// The declared number of intervals.
        num_intervals: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::AlreadyAssigned { event, current } => {
                write!(f, "event {event} is already assigned to {current}")
            }
            ScheduleError::NotAssigned { event } => write!(f, "event {event} is not assigned"),
            ScheduleError::EventOutOfBounds { event, num_events } => {
                write!(f, "event {event} out of bounds (|E| = {num_events})")
            }
            ScheduleError::IntervalOutOfBounds {
                interval,
                num_intervals,
            } => write!(
                f,
                "interval {interval} out of bounds (|T| = {num_intervals})"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An event schedule `S`: a set of assignments with no two assignments
/// referring to the same event.
///
/// Stored both directions — `event → interval` for `O(1)` membership and
/// `interval → events` for per-interval iteration (`E_t(S)` in the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    /// `slot[e] = Some(t)` iff event `e` is assigned to interval `t`.
    slot: Vec<Option<IntervalId>>,
    /// `at[t]` = events assigned to interval `t`, in assignment order.
    at: Vec<Vec<EventId>>,
    assigned: usize,
}

impl PartialEq for Schedule {
    /// Semantic equality: two schedules are equal iff they contain the same
    /// assignments over the same universe. The per-interval `at` vectors
    /// record *insertion order*, which is presentation state, not identity —
    /// the same schedule built in a different order must compare equal.
    fn eq(&self, other: &Self) -> bool {
        self.slot == other.slot && self.at.len() == other.at.len()
    }
}

impl Eq for Schedule {}

impl Schedule {
    /// An empty schedule over `num_events` candidate events and
    /// `num_intervals` intervals.
    pub fn empty(num_events: usize, num_intervals: usize) -> Self {
        Self {
            slot: vec![None; num_events],
            at: vec![Vec::new(); num_intervals],
            assigned: 0,
        }
    }

    /// Number of candidate events in the universe (assigned or not).
    #[inline]
    pub fn num_events(&self) -> usize {
        self.slot.len()
    }

    /// Number of intervals in the universe.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.at.len()
    }

    /// Number of assignments `|S|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.assigned
    }

    /// Whether the schedule is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.assigned == 0
    }

    /// The interval event `e` is assigned to (`t_e(S)`), if any.
    #[inline]
    pub fn interval_of(&self, event: EventId) -> Option<IntervalId> {
        self.slot.get(event.index()).copied().flatten()
    }

    /// Whether event `e` is scheduled (`e ∈ E(S)`).
    #[inline]
    pub fn contains(&self, event: EventId) -> bool {
        self.interval_of(event).is_some()
    }

    /// Events assigned to interval `t` (`E_t(S)`), in assignment order.
    #[inline]
    pub fn events_at(&self, interval: IntervalId) -> &[EventId] {
        &self.at[interval.index()]
    }

    /// Adds assignment `event → interval`.
    pub fn assign(&mut self, event: EventId, interval: IntervalId) -> Result<(), ScheduleError> {
        if event.index() >= self.slot.len() {
            return Err(ScheduleError::EventOutOfBounds {
                event,
                num_events: self.slot.len(),
            });
        }
        if interval.index() >= self.at.len() {
            return Err(ScheduleError::IntervalOutOfBounds {
                interval,
                num_intervals: self.at.len(),
            });
        }
        if let Some(current) = self.slot[event.index()] {
            return Err(ScheduleError::AlreadyAssigned { event, current });
        }
        self.slot[event.index()] = Some(interval);
        self.at[interval.index()].push(event);
        self.assigned += 1;
        Ok(())
    }

    /// Removes the assignment of `event`, returning the interval it was at.
    pub fn unassign(&mut self, event: EventId) -> Result<IntervalId, ScheduleError> {
        let interval = self
            .interval_of(event)
            .ok_or(ScheduleError::NotAssigned { event })?;
        self.slot[event.index()] = None;
        let list = &mut self.at[interval.index()];
        let pos = list
            .iter()
            .position(|&e| e == event)
            .expect("slot/at views must agree");
        list.remove(pos);
        self.assigned -= 1;
        Ok(interval)
    }

    /// Iterates all assignments in event-id order.
    pub fn iter(&self) -> impl Iterator<Item = Assignment> + '_ {
        self.slot.iter().enumerate().filter_map(|(e, t)| {
            t.map(|interval| Assignment::new(EventId::new(e as u32), interval))
        })
    }

    /// The set of scheduled events `E(S)`, in event-id order.
    pub fn scheduled_events(&self) -> Vec<EventId> {
        self.iter().map(|a| a.event).collect()
    }

    /// Intervals that have at least one assignment.
    pub fn occupied_intervals(&self) -> impl Iterator<Item = IntervalId> + '_ {
        self.at
            .iter()
            .enumerate()
            .filter(|(_, events)| !events.is_empty())
            .map(|(t, _)| IntervalId::new(t as u32))
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EventId {
        EventId::new(i)
    }
    fn t(i: u32) -> IntervalId {
        IntervalId::new(i)
    }

    #[test]
    fn assign_and_query() {
        let mut s = Schedule::empty(3, 2);
        assert!(s.is_empty());
        s.assign(e(0), t(1)).unwrap();
        s.assign(e(2), t(1)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.interval_of(e(0)), Some(t(1)));
        assert_eq!(s.interval_of(e(1)), None);
        assert!(s.contains(e(2)));
        assert_eq!(s.events_at(t(1)), &[e(0), e(2)]);
        assert_eq!(s.events_at(t(0)), &[] as &[EventId]);
    }

    #[test]
    fn no_two_assignments_for_same_event() {
        let mut s = Schedule::empty(2, 2);
        s.assign(e(0), t(0)).unwrap();
        let err = s.assign(e(0), t(1)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::AlreadyAssigned {
                event: e(0),
                current: t(0)
            }
        );
    }

    #[test]
    fn unassign_restores_state() {
        let mut s = Schedule::empty(2, 2);
        s.assign(e(0), t(0)).unwrap();
        s.assign(e(1), t(0)).unwrap();
        let was_at = s.unassign(e(0)).unwrap();
        assert_eq!(was_at, t(0));
        assert_eq!(s.events_at(t(0)), &[e(1)]);
        assert!(!s.contains(e(0)));
        assert_eq!(s.len(), 1);
        // Re-assign works after unassign.
        s.assign(e(0), t(1)).unwrap();
        assert_eq!(s.interval_of(e(0)), Some(t(1)));
    }

    #[test]
    fn unassign_missing_errors() {
        let mut s = Schedule::empty(1, 1);
        assert_eq!(
            s.unassign(e(0)).unwrap_err(),
            ScheduleError::NotAssigned { event: e(0) }
        );
    }

    #[test]
    fn out_of_bounds_errors() {
        let mut s = Schedule::empty(1, 1);
        assert!(matches!(
            s.assign(e(5), t(0)).unwrap_err(),
            ScheduleError::EventOutOfBounds { .. }
        ));
        assert!(matches!(
            s.assign(e(0), t(5)).unwrap_err(),
            ScheduleError::IntervalOutOfBounds { .. }
        ));
    }

    #[test]
    fn iter_and_display() {
        let mut s = Schedule::empty(3, 2);
        s.assign(e(2), t(0)).unwrap();
        s.assign(e(0), t(1)).unwrap();
        let assignments: Vec<_> = s.iter().collect();
        assert_eq!(
            assignments,
            vec![Assignment::new(e(0), t(1)), Assignment::new(e(2), t(0))]
        );
        assert_eq!(s.to_string(), "{α(e0→t1), α(e2→t0)}");
        assert_eq!(s.scheduled_events(), vec![e(0), e(2)]);
        let occupied: Vec<_> = s.occupied_intervals().collect();
        assert_eq!(occupied, vec![t(0), t(1)]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut s = Schedule::empty(2, 2);
        s.assign(e(1), t(0)).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn equality_ignores_assignment_order() {
        let mut a = Schedule::empty(3, 2);
        a.assign(e(0), t(0)).unwrap();
        a.assign(e(1), t(0)).unwrap();
        let mut b = Schedule::empty(3, 2);
        b.assign(e(1), t(0)).unwrap();
        b.assign(e(0), t(0)).unwrap();
        assert_eq!(a, b, "same assignments, different insertion order");
        b.unassign(e(0)).unwrap();
        assert_ne!(a, b);
        // Different universes are never equal, even both empty.
        assert_ne!(Schedule::empty(1, 1), Schedule::empty(1, 2));
    }
}
