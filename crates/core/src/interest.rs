//! The interest function `µ : U × (E ∪ C) → [0,1]` (paper §II, "Users").
//!
//! Two storage backends are provided:
//!
//! * [`DenseInterest`] — flat row-major matrices; right for small/medium
//!   instances and for tests;
//! * [`SparseInterest`] — posting lists only; right for EBSN-derived
//!   instances where most (user, event) pairs have zero interest (tag-based
//!   Jaccard interest is extremely sparse).
//!
//! Both backends expose the *inverted index* `event → [(user, µ)]`. All hot
//! engine paths iterate posting lists: a user with `µ(u,r) = 0` contributes
//! nothing to the score of any assignment of `r` (see `DESIGN.md` §1), so
//! scoring an assignment costs `O(|postings(r)|)` instead of `O(|U|)`.

use crate::ids::{CompetingEventId, EventId, EventRef, UserId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A posting: one user with strictly positive interest in an event.
pub type Posting = (UserId, f64);

/// Per-event posting lists (one boxed, sorted slice per event).
type PostingLists = Vec<Box<[Posting]>>;

/// Read access to the interest function and its inverted index.
///
/// Implementations must guarantee:
/// * values are within `[0,1]`;
/// * posting lists are sorted by user id and contain only positive values;
/// * `interest` and `interested_users` agree with each other.
pub trait InterestModel: Send + Sync {
    /// Number of users `|U|`.
    fn num_users(&self) -> usize;
    /// Number of candidate events `|E|`.
    fn num_candidates(&self) -> usize;
    /// Number of competing events `|C|`.
    fn num_competing(&self) -> usize;

    /// The interest `µ(u, h)` of user `u` in (candidate or competing) event `h`.
    fn interest(&self, user: UserId, event: EventRef) -> f64;

    /// Users with strictly positive interest in `h`, sorted by user id.
    fn interested_users(&self, event: EventRef) -> &[Posting];

    /// Total number of non-zero entries (for diagnostics and benchmarks).
    ///
    /// The default walks every posting list — `O(|E| + |C|)` — and exists
    /// for third-party implementations. The built-in backends
    /// ([`SparseInterest`], [`DenseInterest`]) cache the count at
    /// construction and answer in `O(1)`.
    fn nnz(&self) -> usize {
        let cand = (0..self.num_candidates())
            .map(|e| self.interested_users(EventId::new(e as u32).into()).len())
            .sum::<usize>();
        let comp = (0..self.num_competing())
            .map(|c| {
                self.interested_users(CompetingEventId::new(c as u32).into())
                    .len()
            })
            .sum::<usize>();
        cand + comp
    }
}

/// Errors raised while building an interest model.
#[derive(Debug, Clone, PartialEq)]
pub enum InterestError {
    /// A value outside `[0,1]` (or NaN) was supplied.
    ValueOutOfRange {
        /// Offending user.
        user: UserId,
        /// Offending event.
        event: EventRef,
        /// The rejected value.
        value: f64,
    },
    /// A (user, event) pair was supplied twice.
    DuplicateEntry {
        /// Offending user.
        user: UserId,
        /// Offending event.
        event: EventRef,
    },
    /// A user id ≥ `num_users` was supplied.
    UserOutOfBounds {
        /// Offending user.
        user: UserId,
        /// Declared universe size.
        num_users: usize,
    },
    /// An event id outside the declared universe was supplied.
    EventOutOfBounds {
        /// Offending event.
        event: EventRef,
        /// Declared number of candidate events.
        num_candidates: usize,
        /// Declared number of competing events.
        num_competing: usize,
    },
    /// A posting list supplied as pre-sorted (see
    /// [`SparseInterest::from_sorted_postings`]) was not in strictly
    /// ascending user order.
    OutOfOrder {
        /// Offending event.
        event: EventRef,
        /// Position within the posting list where order breaks.
        position: usize,
    },
}

impl fmt::Display for InterestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterestError::ValueOutOfRange { user, event, value } => {
                write!(f, "interest µ({user},{event}) = {value} is outside [0,1]")
            }
            InterestError::DuplicateEntry { user, event } => {
                write!(f, "interest µ({user},{event}) supplied more than once")
            }
            InterestError::UserOutOfBounds { user, num_users } => {
                write!(f, "user {user} out of bounds (|U| = {num_users})")
            }
            InterestError::EventOutOfBounds {
                event,
                num_candidates,
                num_competing,
            } => write!(
                f,
                "event {event} out of bounds (|E| = {num_candidates}, |C| = {num_competing})"
            ),
            InterestError::OutOfOrder { event, position } => write!(
                f,
                "posting list of {event} is not strictly ascending at position {position}"
            ),
        }
    }
}

impl std::error::Error for InterestError {}

/// Incrementally accumulates `(user, event, µ)` triples and builds either
/// backend. Zero values are accepted and silently dropped (they are the
/// common case in EBSN data).
#[derive(Debug, Clone)]
pub struct InterestBuilder {
    num_users: usize,
    num_candidates: usize,
    num_competing: usize,
    candidate_entries: Vec<Vec<Posting>>, // indexed by event
    competing_entries: Vec<Vec<Posting>>, // indexed by competing event
}

impl InterestBuilder {
    /// Starts a builder for the given universe sizes.
    pub fn new(num_users: usize, num_candidates: usize, num_competing: usize) -> Self {
        Self {
            num_users,
            num_candidates,
            num_competing,
            candidate_entries: vec![Vec::new(); num_candidates],
            competing_entries: vec![Vec::new(); num_competing],
        }
    }

    /// Records `µ(user, event) = value`. Values equal to zero are dropped.
    pub fn set(
        &mut self,
        user: UserId,
        event: impl Into<EventRef>,
        value: f64,
    ) -> Result<&mut Self, InterestError> {
        let event = event.into();
        if !(0.0..=1.0).contains(&value) || value.is_nan() {
            return Err(InterestError::ValueOutOfRange { user, event, value });
        }
        if user.index() >= self.num_users {
            return Err(InterestError::UserOutOfBounds {
                user,
                num_users: self.num_users,
            });
        }
        let list = match event {
            EventRef::Candidate(e) => self.candidate_entries.get_mut(e.index()).ok_or(
                InterestError::EventOutOfBounds {
                    event,
                    num_candidates: self.num_candidates,
                    num_competing: self.num_competing,
                },
            )?,
            EventRef::Competing(c) => self.competing_entries.get_mut(c.index()).ok_or(
                InterestError::EventOutOfBounds {
                    event,
                    num_candidates: self.num_candidates,
                    num_competing: self.num_competing,
                },
            )?,
        };
        if value > 0.0 {
            list.push((user, value));
        }
        Ok(self)
    }

    fn finish_postings(mut self) -> Result<(PostingLists, PostingLists), InterestError> {
        let sort_check = |entries: &mut Vec<Posting>,
                          event: EventRef|
         -> Result<Box<[Posting]>, InterestError> {
            entries.sort_unstable_by_key(|(u, _)| *u);
            for w in entries.windows(2) {
                if w[0].0 == w[1].0 {
                    return Err(InterestError::DuplicateEntry {
                        user: w[0].0,
                        event,
                    });
                }
            }
            Ok(std::mem::take(entries).into_boxed_slice())
        };
        let cand = self
            .candidate_entries
            .iter_mut()
            .enumerate()
            .map(|(i, e)| sort_check(e, EventRef::Candidate(EventId::new(i as u32))))
            .collect::<Result<Vec<_>, _>>()?;
        let comp = self
            .competing_entries
            .iter_mut()
            .enumerate()
            .map(|(i, e)| sort_check(e, EventRef::Competing(CompetingEventId::new(i as u32))))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((cand, comp))
    }

    /// Builds the sparse backend.
    pub fn build_sparse(self) -> Result<SparseInterest, InterestError> {
        let (num_users, num_candidates, num_competing) =
            (self.num_users, self.num_candidates, self.num_competing);
        let (candidate_postings, competing_postings) = self.finish_postings()?;
        let nnz = count_nnz(&candidate_postings, &competing_postings);
        Ok(SparseInterest {
            num_users,
            num_candidates,
            num_competing,
            candidate_postings,
            competing_postings,
            nnz,
        })
    }

    /// Builds the dense backend (materializes full matrices).
    pub fn build_dense(self) -> Result<DenseInterest, InterestError> {
        let sparse = self.build_sparse()?;
        Ok(DenseInterest::from_sparse(&sparse))
    }
}

/// Posting-list-only backend; `interest()` binary-searches the posting list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SparseInterest {
    num_users: usize,
    num_candidates: usize,
    num_competing: usize,
    candidate_postings: Vec<Box<[Posting]>>,
    competing_postings: Vec<Box<[Posting]>>,
    /// Cached non-zero count (Σ posting lengths), fixed at construction.
    nnz: usize,
}

/// Σ posting lengths over both event families.
fn count_nnz(candidate: &[Box<[Posting]>], competing: &[Box<[Posting]>]) -> usize {
    candidate.iter().map(|p| p.len()).sum::<usize>()
        + competing.iter().map(|p| p.len()).sum::<usize>()
}

impl SparseInterest {
    /// Builds directly from per-event posting lists that are **already
    /// sorted by strictly ascending user id** — the cold-open path of the
    /// instance store, which persists lists in exactly that order.
    ///
    /// Validation is a single `O(nnz)` pass (order, user bounds,
    /// `µ ∈ (0, 1]`), skipping the builder's sort entirely; any violation
    /// is a typed [`InterestError`].
    pub fn from_sorted_postings(
        num_users: usize,
        candidate_postings: Vec<Box<[Posting]>>,
        competing_postings: Vec<Box<[Posting]>>,
    ) -> Result<Self, InterestError> {
        let check = |postings: &[Box<[Posting]>],
                     event_of: &dyn Fn(usize) -> EventRef|
         -> Result<(), InterestError> {
            for (i, list) in postings.iter().enumerate() {
                for (pos, &(user, value)) in list.iter().enumerate() {
                    if user.index() >= num_users {
                        return Err(InterestError::UserOutOfBounds { user, num_users });
                    }
                    if !(value > 0.0 && value <= 1.0) || value.is_nan() {
                        return Err(InterestError::ValueOutOfRange {
                            user,
                            event: event_of(i),
                            value,
                        });
                    }
                    if pos > 0 && list[pos - 1].0 >= user {
                        return if list[pos - 1].0 == user {
                            Err(InterestError::DuplicateEntry {
                                user,
                                event: event_of(i),
                            })
                        } else {
                            Err(InterestError::OutOfOrder {
                                event: event_of(i),
                                position: pos,
                            })
                        };
                    }
                }
            }
            Ok(())
        };
        check(&candidate_postings, &|i| {
            EventRef::Candidate(EventId::new(i as u32))
        })?;
        check(&competing_postings, &|i| {
            EventRef::Competing(CompetingEventId::new(i as u32))
        })?;
        let nnz = count_nnz(&candidate_postings, &competing_postings);
        Ok(Self {
            num_users,
            num_candidates: candidate_postings.len(),
            num_competing: competing_postings.len(),
            candidate_postings,
            competing_postings,
            nnz,
        })
    }

    fn postings(&self, event: EventRef) -> &[Posting] {
        match event {
            EventRef::Candidate(e) => &self.candidate_postings[e.index()],
            EventRef::Competing(c) => &self.competing_postings[c.index()],
        }
    }
}

impl InterestModel for SparseInterest {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    fn num_competing(&self) -> usize {
        self.num_competing
    }

    fn interest(&self, user: UserId, event: EventRef) -> f64 {
        let postings = self.postings(event);
        match postings.binary_search_by_key(&user, |(u, _)| *u) {
            Ok(i) => postings[i].1,
            Err(_) => 0.0,
        }
    }

    fn interested_users(&self, event: EventRef) -> &[Posting] {
        self.postings(event)
    }

    fn nnz(&self) -> usize {
        self.nnz
    }
}

/// Flat row-major matrix backend with materialized posting lists.
///
/// Lookup is `O(1)`; memory is `|U| · (|E| + |C|)` doubles, so prefer
/// [`SparseInterest`] beyond a few thousand users.
#[derive(Debug, Clone)]
pub struct DenseInterest {
    num_users: usize,
    num_candidates: usize,
    num_competing: usize,
    /// `candidate[u * num_candidates + e]`
    candidate: Vec<f64>,
    /// `competing[u * num_competing + c]`
    competing: Vec<f64>,
    candidate_postings: Vec<Box<[Posting]>>,
    competing_postings: Vec<Box<[Posting]>>,
    /// Cached non-zero count (Σ posting lengths), fixed at construction.
    nnz: usize,
}

impl DenseInterest {
    /// Builds from explicit matrices: `candidate[u][e]`, `competing[u][c]`.
    ///
    /// Returns an error if any value is outside `[0,1]` or row lengths are
    /// ragged.
    pub fn from_matrices(
        candidate: Vec<Vec<f64>>,
        competing: Vec<Vec<f64>>,
    ) -> Result<Self, InterestError> {
        let num_users = candidate.len().max(competing.len());
        let num_candidates = candidate.first().map_or(0, Vec::len);
        let num_competing = competing.first().map_or(0, Vec::len);
        let mut builder = InterestBuilder::new(num_users, num_candidates, num_competing);
        for (u, row) in candidate.iter().enumerate() {
            for (e, &v) in row.iter().enumerate() {
                builder.set(UserId::new(u as u32), EventId::new(e as u32), v)?;
            }
        }
        for (u, row) in competing.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                builder.set(UserId::new(u as u32), CompetingEventId::new(c as u32), v)?;
            }
        }
        builder.build_dense()
    }

    /// Materializes a dense copy of a sparse model.
    pub fn from_sparse(sparse: &SparseInterest) -> Self {
        let (nu, ne, nc) = (
            sparse.num_users,
            sparse.num_candidates,
            sparse.num_competing,
        );
        let mut candidate = vec![0.0; nu * ne];
        let mut competing = vec![0.0; nu * nc];
        for (e, postings) in sparse.candidate_postings.iter().enumerate() {
            for &(u, v) in postings.iter() {
                candidate[u.index() * ne + e] = v;
            }
        }
        for (c, postings) in sparse.competing_postings.iter().enumerate() {
            for &(u, v) in postings.iter() {
                competing[u.index() * nc + c] = v;
            }
        }
        Self {
            num_users: nu,
            num_candidates: ne,
            num_competing: nc,
            candidate,
            competing,
            candidate_postings: sparse.candidate_postings.clone(),
            competing_postings: sparse.competing_postings.clone(),
            nnz: sparse.nnz,
        }
    }
}

impl InterestModel for DenseInterest {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_candidates(&self) -> usize {
        self.num_candidates
    }

    fn num_competing(&self) -> usize {
        self.num_competing
    }

    fn interest(&self, user: UserId, event: EventRef) -> f64 {
        match event {
            EventRef::Candidate(e) => {
                self.candidate[user.index() * self.num_candidates + e.index()]
            }
            EventRef::Competing(c) => self.competing[user.index() * self.num_competing + c.index()],
        }
    }

    fn interested_users(&self, event: EventRef) -> &[Posting] {
        match event {
            EventRef::Candidate(e) => &self.candidate_postings[e.index()],
            EventRef::Competing(c) => &self.competing_postings[c.index()],
        }
    }

    fn nnz(&self) -> usize {
        self.nnz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_builder() -> InterestBuilder {
        // 3 users, 2 candidate events, 1 competing event.
        let mut b = InterestBuilder::new(3, 2, 1);
        b.set(UserId::new(0), EventId::new(0), 0.9).unwrap();
        b.set(UserId::new(2), EventId::new(0), 0.3).unwrap();
        b.set(UserId::new(1), EventId::new(1), 0.5).unwrap();
        b.set(UserId::new(0), CompetingEventId::new(0), 0.2)
            .unwrap();
        b.set(UserId::new(1), EventId::new(0), 0.0).unwrap(); // dropped
        b
    }

    #[test]
    fn sparse_lookup_and_postings_agree() {
        let m = small_builder().build_sparse().unwrap();
        assert_eq!(m.interest(UserId::new(0), EventId::new(0).into()), 0.9);
        assert_eq!(m.interest(UserId::new(1), EventId::new(0).into()), 0.0);
        assert_eq!(m.interest(UserId::new(2), EventId::new(0).into()), 0.3);
        assert_eq!(
            m.interest(UserId::new(0), CompetingEventId::new(0).into()),
            0.2
        );
        let postings = m.interested_users(EventId::new(0).into());
        assert_eq!(
            postings,
            &[(UserId::new(0), 0.9), (UserId::new(2), 0.3)],
            "postings sorted by user id, zeros dropped"
        );
        assert_eq!(m.nnz(), 4);
    }

    #[test]
    fn dense_matches_sparse_everywhere() {
        let sparse = small_builder().build_sparse().unwrap();
        let dense = small_builder().build_dense().unwrap();
        for u in 0..3u32 {
            for e in 0..2u32 {
                let h = EventRef::Candidate(EventId::new(e));
                assert_eq!(
                    dense.interest(UserId::new(u), h),
                    sparse.interest(UserId::new(u), h)
                );
            }
            let h = EventRef::Competing(CompetingEventId::new(0));
            assert_eq!(
                dense.interest(UserId::new(u), h),
                sparse.interest(UserId::new(u), h)
            );
        }
        assert_eq!(
            dense.interested_users(EventId::new(1).into()),
            sparse.interested_users(EventId::new(1).into())
        );
    }

    #[test]
    fn from_matrices_roundtrip() {
        let dense = DenseInterest::from_matrices(
            vec![vec![0.1, 0.0], vec![0.0, 0.7]],
            vec![vec![0.5], vec![0.0]],
        )
        .unwrap();
        assert_eq!(dense.num_users(), 2);
        assert_eq!(dense.interest(UserId::new(1), EventId::new(1).into()), 0.7);
        assert_eq!(
            dense.interested_users(CompetingEventId::new(0).into()),
            &[(UserId::new(0), 0.5)]
        );
    }

    #[test]
    fn rejects_out_of_range_value() {
        let mut b = InterestBuilder::new(1, 1, 0);
        let err = b.set(UserId::new(0), EventId::new(0), 1.5).unwrap_err();
        assert!(matches!(err, InterestError::ValueOutOfRange { .. }));
        let err = b
            .set(UserId::new(0), EventId::new(0), f64::NAN)
            .unwrap_err();
        assert!(matches!(err, InterestError::ValueOutOfRange { .. }));
    }

    #[test]
    fn rejects_duplicates_at_build() {
        let mut b = InterestBuilder::new(2, 1, 0);
        b.set(UserId::new(0), EventId::new(0), 0.4).unwrap();
        b.set(UserId::new(0), EventId::new(0), 0.6).unwrap();
        let err = b.build_sparse().unwrap_err();
        assert!(matches!(err, InterestError::DuplicateEntry { .. }));
    }

    #[test]
    fn rejects_out_of_bounds_ids() {
        let mut b = InterestBuilder::new(1, 1, 1);
        assert!(matches!(
            b.set(UserId::new(5), EventId::new(0), 0.5).unwrap_err(),
            InterestError::UserOutOfBounds { .. }
        ));
        assert!(matches!(
            b.set(UserId::new(0), EventId::new(9), 0.5).unwrap_err(),
            InterestError::EventOutOfBounds { .. }
        ));
        assert!(matches!(
            b.set(UserId::new(0), CompetingEventId::new(9), 0.5)
                .unwrap_err(),
            InterestError::EventOutOfBounds { .. }
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = InterestError::ValueOutOfRange {
            user: UserId::new(1),
            event: EventRef::Candidate(EventId::new(2)),
            value: 2.0,
        };
        assert!(e.to_string().contains("µ(u1,e2)"));
    }

    #[test]
    fn cached_nnz_matches_the_trait_default_recount() {
        // Built-in backends answer nnz from the cache; a third-party impl
        // that only supplies the required methods still gets the default
        // posting-list recount, and the two must agree.
        struct Wrapper(SparseInterest);
        impl InterestModel for Wrapper {
            fn num_users(&self) -> usize {
                self.0.num_users()
            }
            fn num_candidates(&self) -> usize {
                self.0.num_candidates()
            }
            fn num_competing(&self) -> usize {
                self.0.num_competing()
            }
            fn interest(&self, user: UserId, event: EventRef) -> f64 {
                self.0.interest(user, event)
            }
            fn interested_users(&self, event: EventRef) -> &[Posting] {
                self.0.interested_users(event)
            }
            // No nnz override: exercises the default recount.
        }
        let sparse = small_builder().build_sparse().unwrap();
        let dense = small_builder().build_dense().unwrap();
        let recount = Wrapper(sparse.clone()).nnz();
        assert_eq!(sparse.nnz(), recount);
        assert_eq!(dense.nnz(), recount);
        assert_eq!(recount, 4);
    }

    #[test]
    fn from_sorted_postings_matches_builder_and_rejects_bad_lists() {
        let built = small_builder().build_sparse().unwrap();
        let rebuilt = SparseInterest::from_sorted_postings(
            3,
            vec![
                vec![(UserId::new(0), 0.9), (UserId::new(2), 0.3)].into_boxed_slice(),
                vec![(UserId::new(1), 0.5)].into_boxed_slice(),
            ],
            vec![vec![(UserId::new(0), 0.2)].into_boxed_slice()],
        )
        .unwrap();
        assert_eq!(rebuilt.nnz(), built.nnz());
        for u in 0..3u32 {
            for e in 0..2u32 {
                let h = EventRef::Candidate(EventId::new(e));
                assert_eq!(
                    rebuilt.interest(UserId::new(u), h),
                    built.interest(UserId::new(u), h)
                );
            }
        }

        let unsorted = SparseInterest::from_sorted_postings(
            3,
            vec![vec![(UserId::new(2), 0.3), (UserId::new(0), 0.9)].into_boxed_slice()],
            vec![],
        );
        assert!(matches!(unsorted, Err(InterestError::OutOfOrder { .. })));

        let duplicate = SparseInterest::from_sorted_postings(
            3,
            vec![vec![(UserId::new(1), 0.3), (UserId::new(1), 0.9)].into_boxed_slice()],
            vec![],
        );
        assert!(matches!(
            duplicate,
            Err(InterestError::DuplicateEntry { .. })
        ));

        let zero = SparseInterest::from_sorted_postings(
            3,
            vec![vec![(UserId::new(1), 0.0)].into_boxed_slice()],
            vec![],
        );
        assert!(matches!(zero, Err(InterestError::ValueOutOfRange { .. })));

        let oob = SparseInterest::from_sorted_postings(
            1,
            vec![vec![(UserId::new(7), 0.4)].into_boxed_slice()],
            vec![],
        );
        assert!(matches!(oob, Err(InterestError::UserOutOfBounds { .. })));
    }

    #[test]
    fn empty_universe_is_fine() {
        let m = InterestBuilder::new(0, 0, 0).build_sparse().unwrap();
        assert_eq!(m.num_users(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
