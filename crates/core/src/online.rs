//! Online schedule maintenance (extension beyond the paper).
//!
//! The paper schedules once, offline. In practice the world moves after
//! publication: rivals announce new events, acts cancel, the organizer finds
//! budget for one more show. This module keeps a *live* schedule optimal-ish
//! under three kinds of change, reusing the incremental engine:
//!
//! * [`OnlineSession::announce_competing`] — a third-party event appears at
//!   an interval; affected scheduled events may be worth relocating;
//! * [`OnlineSession::cancel_event`] — a scheduled event is cancelled; the
//!   slot is backfilled with the best remaining candidate;
//! * [`OnlineSession::extend`] — schedule one more event greedily;
//! * [`OnlineSession::arrive`] — a candidate that was not on the table at
//!   publication time becomes available (late arrival) and is placed at its
//!   best valid slot, if any;
//! * [`OnlineSession::change_capacity`] — the per-interval resource budget θ
//!   moves; on a cut, over-budget intervals evict their cheapest events and
//!   the repair re-places them elsewhere.
//!
//! Candidates carry an *availability* mask ([`OnlineSession::set_available`])
//! so workload simulators can hold events back and release them over time;
//! backfills and extensions only ever draw from available candidates.
//!
//! Repairs are greedy and local (a bounded relocate pass around the touched
//! interval), mirroring how GRD itself works; each repair reports the
//! utility swing so operators can see the cost of each disruption.
//!
//! Placement searches are **delta-maintained**: the session caches one
//! score row per candidate (its Eq. 4 score at every interval), tagged with
//! the engine's mutation clock. After a disruption only the *dirty*
//! intervals ([`AttendanceEngine::dirty_intervals`]) are rescored through
//! the [`AttendanceEngine::rescore_event_at`] delta API; every clean
//! interval's cached score is still bit-exact, so repair decisions are
//! bit-identical to a full `score_all` rescan (property-tested in
//! `crates/core/tests/incremental_equivalence.rs`) at a fraction of the
//! posting visits. [`OnlineSession::set_exhaustive_rescan`] switches back
//! to the full-rescan reference path.

use crate::engine::{AttendanceEngine, EngineCounters};
use crate::ids::{EventId, IntervalId, UserId};
use crate::instance::SesInstance;
use crate::schedule::{Schedule, ScheduleError};
use crate::util::float::total_cmp;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What a repair changed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Utility before the disruption.
    pub utility_before: f64,
    /// Utility right after the disruption, before repair.
    pub utility_disrupted: f64,
    /// Utility after repair.
    pub utility_after: f64,
    /// Events moved or added by the repair, with their new interval.
    pub moves: Vec<(EventId, IntervalId)>,
}

impl RepairReport {
    /// Net damage of the disruption after repair (≥ 0 in the usual case of
    /// a hostile change; negative means the repair found a net improvement).
    pub fn net_loss(&self) -> f64 {
        self.utility_before - self.utility_after
    }

    /// How much of the disruption the repair recovered.
    pub fn recovered(&self) -> f64 {
        self.utility_after - self.utility_disrupted
    }
}

/// One candidate's cached placement scores: `scores[t]` is the Eq. 4 score
/// of `event → t`, bit-exact as of the engine clock `clock`. Intervals that
/// mutated after `clock` are refreshed through the delta API on next use;
/// the rest are reused verbatim.
#[derive(Debug, Clone)]
struct ScoreRow {
    scores: Vec<f64>,
    clock: u64,
}

/// A live schedule bound to an instance.
///
/// Sessions own a shared handle to their instance (via the engine), so they
/// are `Send + 'static`: a server can keep many named sessions in a map and
/// move them across threads. See [`crate::engine::AttendanceEngine`] for the
/// ownership model.
pub struct OnlineSession {
    engine: AttendanceEngine,
    /// Which candidates may be drawn by backfills/extensions. Scheduled
    /// events are unaffected by their own flag until they leave the schedule.
    available: Vec<bool>,
    /// Per-candidate cached score rows (built lazily on first placement
    /// search), each tagged with the engine clock it was fresh at.
    score_rows: Vec<Option<ScoreRow>>,
    /// `false` = the dirty-interval cache above; `true` = full `score_all`
    /// rescans (the reference path the equivalence tests compare against).
    exhaustive_rescan: bool,
}

impl OnlineSession {
    /// Starts a session from an existing feasible schedule, with every
    /// candidate available.
    pub fn new(
        inst: &Arc<SesInstance>,
        schedule: &Schedule,
    ) -> Result<Self, crate::instance::FeasibilityViolation> {
        Ok(Self {
            engine: AttendanceEngine::with_schedule(inst, schedule)?,
            available: vec![true; inst.num_events()],
            score_rows: vec![None; inst.num_events()],
            exhaustive_rescan: false,
        })
    }

    /// Disables (or re-enables) the dirty-interval score cache: with
    /// `exhaustive = true` every placement search recomputes every interval
    /// from scratch (the pre-delta batch path). Repair decisions are
    /// bit-identical either way — the cache only skips recomputing scores
    /// that provably did not change — so this knob exists as the reference
    /// arm of the incremental ≡ full property tests and for ablation.
    pub fn set_exhaustive_rescan(&mut self, exhaustive: bool) {
        self.exhaustive_rescan = exhaustive;
    }

    /// Current schedule.
    pub fn schedule(&self) -> &Schedule {
        self.engine.schedule()
    }

    /// Current utility (reflecting all dynamic competing events so far).
    pub fn utility(&self) -> f64 {
        self.engine.total_utility()
    }

    /// The instance this session runs against.
    pub fn instance(&self) -> &SesInstance {
        self.engine.instance()
    }

    /// The shared handle to the instance.
    pub fn instance_arc(&self) -> &Arc<SesInstance> {
        self.engine.instance_arc()
    }

    /// The live per-interval resource budget θ.
    pub fn budget(&self) -> f64 {
        self.engine.budget()
    }

    /// Engine operation counters accumulated by this session (score
    /// evaluations, posting visits, assigns/unassigns) — the simulator's
    /// hardware-independent throughput measure.
    pub fn counters(&self) -> EngineCounters {
        self.engine.counters()
    }

    /// Resident-memory and build-cost accounting of the session's engine
    /// (blocked column layout) — fixed at session construction; serving
    /// front ends aggregate it per shard for `/metrics`.
    pub fn memory_stats(&self) -> crate::engine::EngineMemoryStats {
        self.engine.memory_stats()
    }

    /// The engine's monotone mutation clock: how many state-changing
    /// engine operations (assigns, unassigns, competing-mass injections
    /// that landed in the slot index) this session has absorbed. Serving
    /// front ends surface it next to [`Self::counters`] so operators can
    /// see how much schedule churn a session has seen, independent of how
    /// much scoring work that churn cost.
    pub fn clock(&self) -> u64 {
        self.engine.clock()
    }

    /// Whether `event` may be drawn by backfills and extensions.
    pub fn is_available(&self, event: EventId) -> bool {
        self.available[event.index()]
    }

    /// Sets the availability mask of `event`. Masking an event that is
    /// currently scheduled does not remove it — it only stops the event
    /// from being re-drawn after it leaves the schedule.
    pub fn set_available(&mut self, event: EventId, available: bool) {
        self.available[event.index()] = available;
    }

    /// Brings `event`'s cached score row up to date: a full `score_all` on
    /// first use, then only the intervals the engine marks dirty — each one
    /// a single [`AttendanceEngine::rescore_event_at`] delta evaluation.
    /// Clean intervals keep their cached bits, which recomputation would
    /// reproduce exactly (Eq. 4 is a pure function of the interval's
    /// columns), so consumers cannot observe the difference.
    fn refresh_row(&mut self, event: EventId) {
        let start_ns = ses_obs::now_ns();
        let counters_before = self.engine.counters();
        let now = self.engine.clock();
        let mut refreshed = 0u64;
        match &mut self.score_rows[event.index()] {
            Some(row) => {
                for t in self.engine.dirty_intervals(row.clock) {
                    let (score, _) = self.engine.rescore_event_at(event, t);
                    row.scores[t.index()] = score;
                    refreshed += 1;
                }
                row.clock = now;
            }
            slot => {
                let scores = self.engine.score_all(event);
                refreshed = scores.len() as u64;
                *slot = Some(ScoreRow { scores, clock: now });
            }
        }
        // Clean rows are the common case on a quiet session — don't spend a
        // ring slot recording that nothing was rescored.
        if refreshed > 0 {
            ses_obs::record_span(
                ses_obs::Stage::Rescore,
                start_ns,
                ses_obs::now_ns().saturating_sub(start_ns),
                self.engine.counters().delta_since(counters_before).as_ops(),
                [refreshed, 0],
            );
        }
    }

    /// Best valid placement for `event` over all intervals, if any.
    ///
    /// Consults the dirty-interval score cache (or, under
    /// [`Self::set_exhaustive_rescan`], the engine's batch `score_all`) and
    /// filters to valid intervals afterwards.
    fn best_placement(&mut self, event: EventId) -> Option<(IntervalId, f64)> {
        let exhaustive; // keeps the reference path's owned scores alive
        let scores: &[f64] = if self.exhaustive_rescan {
            exhaustive = self.engine.score_all(event);
            &exhaustive
        } else {
            self.refresh_row(event);
            &self.score_rows[event.index()]
                .as_ref()
                .expect("row was just refreshed")
                .scores
        };
        let engine = &self.engine;
        scores
            .iter()
            .enumerate()
            .map(|(t, &score)| (IntervalId::new(t as u32), score))
            .filter(|&(t, _)| engine.is_valid(event, t))
            .max_by(|a, b| total_cmp(a.1, b.1))
    }

    /// One relocate pass over the events scheduled at `interval`: each is
    /// moved to its globally best slot if that strictly improves Ω.
    fn relocate_interval(&mut self, interval: IntervalId, moves: &mut Vec<(EventId, IntervalId)>) {
        let events: Vec<EventId> = self.engine.schedule().events_at(interval).to_vec();
        for event in events {
            let loss = self
                .engine
                .unassign(event)
                .expect("event was scheduled at the interval");
            // The vacated home slot may fail a strict resource re-check by a
            // float ulp (or, after a capacity cut, sit exactly at budget), so
            // staying put goes through the restore path, not `assign`.
            let better = self
                .best_placement(event)
                .filter(|&(_, gain)| gain > loss + 1e-9);
            match better {
                Some((target, _)) if target != interval => {
                    self.engine
                        .assign(event, target)
                        .expect("chosen placement was validated");
                    moves.push((event, target));
                }
                _ => {
                    self.engine.assign_restored(event, interval);
                }
            }
        }
    }

    /// A rival announces an event at `interval`; `postings` lists users and
    /// their interest in it. Applies the change, then tries to relocate the
    /// interval's scheduled events to better slots.
    pub fn announce_competing(
        &mut self,
        interval: IntervalId,
        postings: &[(UserId, f64)],
    ) -> RepairReport {
        let mut span = ses_obs::span(ses_obs::Stage::Repair);
        let counters_before = self.engine.counters();
        let utility_before = self.engine.total_utility();
        self.engine.add_competing_mass(interval, postings);
        let utility_disrupted = self.engine.total_utility();
        let mut moves = Vec::new();
        self.relocate_interval(interval, &mut moves);
        span.set_ops(self.engine.counters().delta_since(counters_before).as_ops());
        span.set_aux(moves.len() as u64, postings.len() as u64);
        RepairReport {
            utility_before,
            utility_disrupted,
            utility_after: self.engine.total_utility(),
            moves,
        }
    }

    /// A scheduled event is cancelled; backfills with the best remaining
    /// unscheduled candidate (if any placement is valid).
    pub fn cancel_event(&mut self, event: EventId) -> Result<RepairReport, ScheduleError> {
        let mut span = ses_obs::span(ses_obs::Stage::Repair);
        let counters_before = self.engine.counters();
        let utility_before = self.engine.total_utility();
        self.engine.unassign(event)?;
        let utility_disrupted = self.engine.total_utility();
        let mut moves = Vec::new();
        if let Some((replacement, target, _)) = self.best_unscheduled() {
            self.engine
                .assign(replacement, target)
                .expect("placement was validated");
            moves.push((replacement, target));
        }
        span.set_ops(self.engine.counters().delta_since(counters_before).as_ops());
        span.set_aux(moves.len() as u64, 0);
        Ok(RepairReport {
            utility_before,
            utility_disrupted,
            utility_after: self.engine.total_utility(),
            moves,
        })
    }

    /// Greedily schedules one more event (the `k → k+1` upgrade). Returns
    /// `None` when no valid assignment remains.
    pub fn extend(&mut self) -> Option<RepairReport> {
        let mut span = ses_obs::span(ses_obs::Stage::Repair);
        let counters_before = self.engine.counters();
        let utility_before = self.engine.total_utility();
        let (event, target, _) = self.best_unscheduled()?;
        self.engine
            .assign(event, target)
            .expect("placement was validated");
        span.set_ops(self.engine.counters().delta_since(counters_before).as_ops());
        span.set_aux(1, 0);
        Some(RepairReport {
            utility_before,
            utility_disrupted: utility_before,
            utility_after: self.engine.total_utility(),
            moves: vec![(event, target)],
        })
    }

    /// A candidate that missed the initial planning round becomes available
    /// (late arrival) and is greedily placed at its best valid slot.
    ///
    /// Returns `None` — with the event now available for future backfills —
    /// when it is already scheduled or no valid placement exists.
    pub fn arrive(&mut self, event: EventId) -> Option<RepairReport> {
        self.available[event.index()] = true;
        if self.engine.schedule().contains(event) {
            return None;
        }
        let mut span = ses_obs::span(ses_obs::Stage::Repair);
        let counters_before = self.engine.counters();
        let utility_before = self.engine.total_utility();
        let (target, _) = self.best_placement(event)?;
        self.engine
            .assign(event, target)
            .expect("placement was validated");
        span.set_ops(self.engine.counters().delta_since(counters_before).as_ops());
        span.set_aux(1, 0);
        Some(RepairReport {
            utility_before,
            utility_disrupted: utility_before,
            utility_after: self.engine.total_utility(),
            moves: vec![(event, target)],
        })
    }

    /// The organizer's per-interval resource budget θ changes (a venue adds
    /// or closes floors, staffing shifts). On a cut, every over-budget
    /// interval evicts its lowest-attendance events until it fits — strictly
    /// within the new budget, so every survivor's slot would re-validate —
    /// and the repair then re-places evicted *available* events at their
    /// best valid slots. An evicted event that is unavailable (withheld) or
    /// fits nowhere under the new budget leaves the schedule, like a
    /// cancellation without backfill.
    ///
    /// Budgets are sanitized: a negative budget acts as `0.0` (evict
    /// everything), and a non-finite budget is ignored (the current budget
    /// stays in force) — a NaN flowing into the feasibility comparisons
    /// would silently disable resource checks.
    pub fn change_capacity(&mut self, budget: f64) -> RepairReport {
        let mut span = ses_obs::span(ses_obs::Stage::Repair);
        let counters_before = self.engine.counters();
        let budget = if budget.is_finite() {
            budget.max(0.0)
        } else {
            self.engine.budget()
        };
        let utility_before = self.engine.total_utility();
        let shrinking = budget < self.engine.budget();
        self.engine.set_budget(budget);
        let mut evicted: Vec<EventId> = Vec::new();
        if shrinking {
            let num_intervals = self.engine.instance().num_intervals();
            for t in (0..num_intervals).map(|t| IntervalId::new(t as u32)) {
                while self.engine.used_resources(t) > budget {
                    let victim = self
                        .engine
                        .schedule()
                        .events_at(t)
                        .iter()
                        .copied()
                        .min_by(|&a, &b| {
                            total_cmp(
                                self.engine.expected_attendance(a).unwrap_or(0.0),
                                self.engine.expected_attendance(b).unwrap_or(0.0),
                            )
                        })
                        .expect("over-budget interval holds at least one event");
                    self.engine
                        .unassign(victim)
                        .expect("victim was scheduled at the interval");
                    evicted.push(victim);
                }
            }
        }
        let utility_disrupted = self.engine.total_utility();
        let mut moves = Vec::new();
        for event in evicted {
            if !self.available[event.index()] {
                continue;
            }
            if let Some((target, _)) = self.best_placement(event) {
                self.engine
                    .assign(event, target)
                    .expect("placement was validated");
                moves.push((event, target));
            }
        }
        span.set_ops(self.engine.counters().delta_since(counters_before).as_ops());
        span.set_aux(moves.len() as u64, 0);
        RepairReport {
            utility_before,
            utility_disrupted,
            utility_after: self.engine.total_utility(),
            moves,
        }
    }

    /// The cancelled event itself can be re-added later (e.g. the act is
    /// rebooked): it is just another unscheduled *available* candidate.
    fn best_unscheduled(&mut self) -> Option<(EventId, IntervalId, f64)> {
        let num_events = self.engine.instance().num_events();
        let mut best: Option<(EventId, IntervalId, f64)> = None;
        for e in (0..num_events).map(|e| EventId::new(e as u32)) {
            if !self.available[e.index()] || self.engine.schedule().contains(e) {
                continue;
            }
            let Some((t, s)) = self.best_placement(e) else {
                continue;
            };
            // `is_ge` keeps the last of equally-scored candidates, matching
            // the `Iterator::max_by` semantics this loop replaced.
            if best.is_none_or(|(_, _, bs)| total_cmp(s, bs).is_ge()) {
                best = Some((e, t, s));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyScheduler, Scheduler};
    use crate::testkit;

    fn session(seed: u64, k: usize) -> (Arc<crate::instance::SesInstance>, Schedule) {
        let inst = testkit::medium_instance(seed);
        let out = GreedyScheduler::new().run(&inst, k).unwrap();
        (inst, out.schedule)
    }

    #[test]
    fn announce_competing_damages_then_repair_recovers() {
        let (inst, schedule) = session(1, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.utility();
        // A strong rival interesting to every user, at a busy interval.
        let busy = s
            .schedule()
            .occupied_intervals()
            .next()
            .expect("schedule is non-empty");
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 0.9))
            .collect();
        let report = s.announce_competing(busy, &postings);
        assert_eq!(report.utility_before, before);
        assert!(
            report.utility_disrupted < report.utility_before,
            "a universally interesting rival must cost attendance"
        );
        assert!(report.utility_after >= report.utility_disrupted - 1e-9);
        assert_eq!(s.schedule().len(), 6, "repairs never change |S|");
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn repair_relocates_away_from_poisoned_interval() {
        let (inst, schedule) = session(3, 4);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let busy = s
            .schedule()
            .occupied_intervals()
            .max_by_key(|&t| s.schedule().events_at(t).len())
            .unwrap();
        let events_before = s.schedule().events_at(busy).len();
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 1.0))
            .collect();
        // Poison the interval twice to make staying clearly bad.
        s.announce_competing(busy, &postings);
        let report = s.announce_competing(busy, &postings);
        let events_after = s.schedule().events_at(busy).len();
        assert!(
            events_after <= events_before,
            "poisoned interval should not gain events"
        );
        // Any moves recorded must have actually been applied.
        for &(e, t) in &report.moves {
            assert_eq!(s.schedule().interval_of(e), Some(t));
        }
    }

    #[test]
    fn cancel_event_backfills() {
        let (inst, schedule) = session(5, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let victim = schedule.scheduled_events()[0];
        let report = s.cancel_event(victim).unwrap();
        assert!(!s.schedule().contains(victim) || report.moves.iter().any(|&(e, _)| e == victim));
        // 12 events, 6 scheduled → replacements exist; size restored.
        assert_eq!(s.schedule().len(), 6);
        assert!(report.recovered() >= -1e-9);
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn cancel_unscheduled_event_errors() {
        let (inst, schedule) = session(5, 3);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let unscheduled = (0..inst.num_events() as u32)
            .map(EventId::new)
            .find(|&e| !schedule.contains(e))
            .unwrap();
        assert!(s.cancel_event(unscheduled).is_err());
    }

    #[test]
    fn extend_adds_the_greedy_best_event() {
        let (inst, schedule) = session(7, 5);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.utility();
        let report = s.extend().expect("unscheduled events remain");
        assert_eq!(s.schedule().len(), 6);
        assert!(report.utility_after >= before);
        assert_eq!(report.moves.len(), 1);
        inst.check_schedule(s.schedule()).unwrap();
        // Extending until no event remains terminates cleanly.
        while s.extend().is_some() {}
        assert!(s.schedule().len() <= inst.num_events());
    }

    #[test]
    fn withheld_events_are_skipped_by_backfill_and_extend() {
        let (inst, schedule) = session(11, 4);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        // Hold back every unscheduled candidate.
        let held: Vec<EventId> = (0..inst.num_events() as u32)
            .map(EventId::new)
            .filter(|&e| !schedule.contains(e))
            .collect();
        assert!(!held.is_empty(), "12 events, 4 scheduled");
        for &e in &held {
            s.set_available(e, false);
            assert!(!s.is_available(e));
        }
        assert!(s.extend().is_none(), "extension pool is empty");
        let victim = s.schedule().scheduled_events()[0];
        let report = s.cancel_event(victim).unwrap();
        // The cancelled event itself is still available, so the only legal
        // backfill is re-seating the victim.
        for &(e, _) in &report.moves {
            assert_eq!(e, victim);
        }
    }

    #[test]
    fn arrive_places_a_late_candidate_greedily() {
        let (inst, schedule) = session(13, 4);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let late = (0..inst.num_events() as u32)
            .map(EventId::new)
            .find(|&e| !schedule.contains(e))
            .unwrap();
        s.set_available(late, false);
        let before = s.utility();
        let report = s.arrive(late).expect("a free slot exists");
        assert!(s.is_available(late));
        assert!(s.schedule().contains(late));
        assert_eq!(report.moves.len(), 1);
        assert!(report.utility_after >= before - 1e-12, "scores are ≥ 0");
        inst.check_schedule(s.schedule()).unwrap();
        // Arriving again is a no-op.
        assert!(s.arrive(late).is_none());
    }

    #[test]
    fn capacity_cut_evicts_until_feasible_and_repairs() {
        let (inst, schedule) = session(17, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.utility();
        // Cut the budget to the largest single event, forcing evictions at
        // any interval hosting more than one chunky event.
        let new_budget = inst.budget() / 2.0;
        let report = s.change_capacity(new_budget);
        assert_eq!(s.budget(), new_budget);
        for t in (0..inst.num_intervals()).map(|t| IntervalId::new(t as u32)) {
            let used: f64 = s
                .schedule()
                .events_at(t)
                .iter()
                .map(|&e| inst.event(e).required_resources)
                .sum();
            assert!(used <= new_budget + 1e-9, "interval {t} still over budget");
        }
        assert!(report.utility_before == before);
        assert!(report.utility_after <= report.utility_before + 1e-9);
        assert!(report.recovered() >= -1e-9, "repair only re-adds");
        // Restoring capacity is repair-free and allows re-extension.
        let restore = s.change_capacity(inst.budget());
        assert!(restore.moves.is_empty());
        assert_eq!(restore.utility_disrupted, restore.utility_before);
        while s.extend().is_some() {}
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn capacity_cut_keeps_utility_consistent_with_reference() {
        use crate::engine::evaluate_schedule;
        let (inst, schedule) = session(19, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        s.change_capacity(inst.budget() * 0.4);
        // No dynamic competing mass was injected, so the from-scratch
        // reference must agree with the engine's running utility.
        let eval = evaluate_schedule(&inst, s.schedule());
        assert!(
            (eval.total_utility - s.utility()).abs() < 1e-7,
            "engine {} vs reference {}",
            s.utility(),
            eval.total_utility
        );
    }

    #[test]
    fn rival_announce_after_exact_budget_cut_does_not_panic() {
        // Regression: cut the budget to exactly an interval's usage, then
        // announce a rival there. The relocate pass unassigns each event and
        // must be able to put it back even though a strict re-check of the
        // exactly-at-budget home slot could fail by a float ulp.
        let (inst, schedule) = session(29, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let busy = s
            .schedule()
            .occupied_intervals()
            .max_by_key(|&t| s.schedule().events_at(t).len())
            .unwrap();
        let used: f64 = s
            .schedule()
            .events_at(busy)
            .iter()
            .map(|&e| inst.event(e).required_resources)
            .sum();
        s.change_capacity(used);
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 0.9))
            .collect();
        // Several rounds; each relocate pass re-seats events at `busy`.
        for _ in 0..3 {
            let report = s.announce_competing(busy, &postings);
            assert!(report.recovered() >= -1e-9);
        }
        assert!(!s.schedule().is_empty());
    }

    #[test]
    fn capacity_cut_does_not_reseat_withheld_events() {
        // Regression: an evicted event whose availability mask is off must
        // not be re-drawn into the schedule by the capacity repair.
        let (inst, schedule) = session(37, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        for e in s.schedule().scheduled_events() {
            s.set_available(e, false);
        }
        let scheduled_before: Vec<EventId> = s.schedule().scheduled_events();
        let report = s.change_capacity(inst.budget() * 0.3);
        // Whatever was evicted stayed out: the surviving schedule is a
        // subset of the original, and no repair moves happened.
        assert!(report.moves.is_empty(), "withheld events were re-seated");
        for e in s.schedule().scheduled_events() {
            assert!(scheduled_before.contains(&e));
        }
    }

    #[test]
    fn change_capacity_sanitizes_degenerate_budgets() {
        // Regression: a negative budget used to spin the eviction loop past
        // an empty interval and panic; NaN used to disable resource checks.
        let (inst, schedule) = session(43, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let report = s.change_capacity(-1.0);
        assert_eq!(s.budget(), 0.0, "negative budget acts as zero");
        assert_eq!(s.schedule().len(), 0, "zero budget evicts everything");
        assert!(report.utility_after.abs() < 1e-9);

        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.budget();
        let report = s.change_capacity(f64::NAN);
        assert_eq!(s.budget(), before, "non-finite budget is ignored");
        assert!(report.moves.is_empty());
        assert_eq!(report.utility_before, report.utility_after);
        // Resource checks still bind: extending past the real budget fails
        // exactly as before the call.
        while s.extend().is_some() {}
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn cached_and_exhaustive_repairs_agree_bit_for_bit() {
        // The dirty-interval score cache must be invisible in every output:
        // same repair reports (float bits included), same schedules, same
        // Ω — while doing strictly less scoring work on a long stream.
        let (inst, schedule) = session(23, 6);
        let mut cached = OnlineSession::new(&inst, &schedule).unwrap();
        let mut full = OnlineSession::new(&inst, &schedule).unwrap();
        full.set_exhaustive_rescan(true);
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .step_by(2)
            .map(|u| (UserId::new(u as u32), 0.6))
            .collect();
        let busy = schedule.occupied_intervals().next().unwrap();
        for round in 0..4 {
            let a = cached.announce_competing(busy, &postings);
            let b = full.announce_competing(busy, &postings);
            assert_eq!(a, b, "announce round {round}");
            let victim = cached.schedule().scheduled_events()[0];
            assert_eq!(victim, full.schedule().scheduled_events()[0]);
            let a = cached.cancel_event(victim).unwrap();
            let b = full.cancel_event(victim).unwrap();
            assert_eq!(a, b, "cancel round {round}");
            assert_eq!(cached.extend(), full.extend(), "extend round {round}");
            assert_eq!(cached.schedule(), full.schedule(), "round {round}");
            assert_eq!(
                cached.utility().to_bits(),
                full.utility().to_bits(),
                "round {round}"
            );
        }
        let (c, f) = (cached.counters(), full.counters());
        assert!(
            c.score_evaluations < f.score_evaluations,
            "cache saved nothing: {} vs {}",
            c.score_evaluations,
            f.score_evaluations
        );
        assert!(c.posting_visits < f.posting_visits);
    }

    #[test]
    fn report_accessors() {
        let r = RepairReport {
            utility_before: 10.0,
            utility_disrupted: 7.0,
            utility_after: 9.0,
            moves: vec![],
        };
        assert!((r.net_loss() - 1.0).abs() < 1e-12);
        assert!((r.recovered() - 2.0).abs() < 1e-12);
    }
}
