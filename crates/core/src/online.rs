//! Online schedule maintenance (extension beyond the paper).
//!
//! The paper schedules once, offline. In practice the world moves after
//! publication: rivals announce new events, acts cancel, the organizer finds
//! budget for one more show. This module keeps a *live* schedule optimal-ish
//! under three kinds of change, reusing the incremental engine:
//!
//! * [`OnlineSession::announce_competing`] — a third-party event appears at
//!   an interval; affected scheduled events may be worth relocating;
//! * [`OnlineSession::cancel_event`] — a scheduled event is cancelled; the
//!   slot is backfilled with the best remaining candidate;
//! * [`OnlineSession::extend`] — schedule one more event greedily.
//!
//! Repairs are greedy and local (a bounded relocate pass around the touched
//! interval), mirroring how GRD itself works; each repair reports the
//! utility swing so operators can see the cost of each disruption.

use crate::engine::AttendanceEngine;
use crate::ids::{EventId, IntervalId, UserId};
use crate::instance::SesInstance;
use crate::schedule::{Schedule, ScheduleError};
use crate::util::float::total_cmp;

/// What a repair changed.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Utility before the disruption.
    pub utility_before: f64,
    /// Utility right after the disruption, before repair.
    pub utility_disrupted: f64,
    /// Utility after repair.
    pub utility_after: f64,
    /// Events moved or added by the repair, with their new interval.
    pub moves: Vec<(EventId, IntervalId)>,
}

impl RepairReport {
    /// Net damage of the disruption after repair (≥ 0 in the usual case of
    /// a hostile change; negative means the repair found a net improvement).
    pub fn net_loss(&self) -> f64 {
        self.utility_before - self.utility_after
    }

    /// How much of the disruption the repair recovered.
    pub fn recovered(&self) -> f64 {
        self.utility_after - self.utility_disrupted
    }
}

/// A live schedule bound to an instance.
pub struct OnlineSession<'a> {
    engine: AttendanceEngine<'a>,
}

impl<'a> OnlineSession<'a> {
    /// Starts a session from an existing feasible schedule.
    pub fn new(
        inst: &'a SesInstance,
        schedule: &Schedule,
    ) -> Result<Self, crate::instance::FeasibilityViolation> {
        Ok(Self {
            engine: AttendanceEngine::with_schedule(inst, schedule)?,
        })
    }

    /// Current schedule.
    pub fn schedule(&self) -> &Schedule {
        self.engine.schedule()
    }

    /// Current utility (reflecting all dynamic competing events so far).
    pub fn utility(&self) -> f64 {
        self.engine.total_utility()
    }

    /// The instance this session runs against.
    pub fn instance(&self) -> &'a SesInstance {
        self.engine.instance()
    }

    /// Best valid placement for `event` over all intervals, if any.
    fn best_placement(&self, event: EventId) -> Option<(IntervalId, f64)> {
        let inst = self.engine.instance();
        (0..inst.num_intervals())
            .map(|t| IntervalId::new(t as u32))
            .filter(|&t| self.engine.is_valid(event, t))
            .map(|t| (t, self.engine.score(event, t)))
            .max_by(|a, b| total_cmp(a.1, b.1))
    }

    /// One relocate pass over the events scheduled at `interval`: each is
    /// moved to its globally best slot if that strictly improves Ω.
    fn relocate_interval(&mut self, interval: IntervalId, moves: &mut Vec<(EventId, IntervalId)>) {
        let events: Vec<EventId> = self.engine.schedule().events_at(interval).to_vec();
        for event in events {
            let loss = self
                .engine
                .unassign(event)
                .expect("event was scheduled at the interval");
            let (target, gain) = self
                .best_placement(event)
                .expect("the vacated home slot is always valid");
            let destination = if gain > loss + 1e-9 { target } else { interval };
            self.engine
                .assign(event, destination)
                .expect("chosen placement was validated");
            if destination != interval {
                moves.push((event, destination));
            }
        }
    }

    /// A rival announces an event at `interval`; `postings` lists users and
    /// their interest in it. Applies the change, then tries to relocate the
    /// interval's scheduled events to better slots.
    pub fn announce_competing(
        &mut self,
        interval: IntervalId,
        postings: &[(UserId, f64)],
    ) -> RepairReport {
        let utility_before = self.engine.total_utility();
        self.engine.add_competing_mass(interval, postings);
        let utility_disrupted = self.engine.total_utility();
        let mut moves = Vec::new();
        self.relocate_interval(interval, &mut moves);
        RepairReport {
            utility_before,
            utility_disrupted,
            utility_after: self.engine.total_utility(),
            moves,
        }
    }

    /// A scheduled event is cancelled; backfills with the best remaining
    /// unscheduled candidate (if any placement is valid).
    pub fn cancel_event(&mut self, event: EventId) -> Result<RepairReport, ScheduleError> {
        let utility_before = self.engine.total_utility();
        self.engine.unassign(event)?;
        let utility_disrupted = self.engine.total_utility();
        let mut moves = Vec::new();
        if let Some((replacement, target, _)) = self.best_unscheduled() {
            self.engine
                .assign(replacement, target)
                .expect("placement was validated");
            moves.push((replacement, target));
        }
        Ok(RepairReport {
            utility_before,
            utility_disrupted,
            utility_after: self.engine.total_utility(),
            moves,
        })
    }

    /// Greedily schedules one more event (the `k → k+1` upgrade). Returns
    /// `None` when no valid assignment remains.
    pub fn extend(&mut self) -> Option<RepairReport> {
        let utility_before = self.engine.total_utility();
        let (event, target, _) = self.best_unscheduled()?;
        self.engine
            .assign(event, target)
            .expect("placement was validated");
        Some(RepairReport {
            utility_before,
            utility_disrupted: utility_before,
            utility_after: self.engine.total_utility(),
            moves: vec![(event, target)],
        })
    }

    /// The cancelled event itself can be re-added later (e.g. the act is
    /// rebooked): it is just another unscheduled candidate.
    fn best_unscheduled(&self) -> Option<(EventId, IntervalId, f64)> {
        let inst = self.engine.instance();
        (0..inst.num_events())
            .map(|e| EventId::new(e as u32))
            .filter(|&e| !self.engine.schedule().contains(e))
            .filter_map(|e| self.best_placement(e).map(|(t, s)| (e, t, s)))
            .max_by(|a, b| total_cmp(a.2, b.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyScheduler, Scheduler};
    use crate::testkit;

    fn session(seed: u64, k: usize) -> (crate::instance::SesInstance, Schedule) {
        let inst = testkit::medium_instance(seed);
        let out = GreedyScheduler::new().run(&inst, k).unwrap();
        (inst, out.schedule)
    }

    #[test]
    fn announce_competing_damages_then_repair_recovers() {
        let (inst, schedule) = session(1, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.utility();
        // A strong rival interesting to every user, at a busy interval.
        let busy = s
            .schedule()
            .occupied_intervals()
            .next()
            .expect("schedule is non-empty");
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 0.9))
            .collect();
        let report = s.announce_competing(busy, &postings);
        assert_eq!(report.utility_before, before);
        assert!(
            report.utility_disrupted < report.utility_before,
            "a universally interesting rival must cost attendance"
        );
        assert!(report.utility_after >= report.utility_disrupted - 1e-9);
        assert_eq!(s.schedule().len(), 6, "repairs never change |S|");
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn repair_relocates_away_from_poisoned_interval() {
        let (inst, schedule) = session(3, 4);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let busy = s
            .schedule()
            .occupied_intervals()
            .max_by_key(|&t| s.schedule().events_at(t).len())
            .unwrap();
        let events_before = s.schedule().events_at(busy).len();
        let postings: Vec<(UserId, f64)> = (0..inst.num_users())
            .map(|u| (UserId::new(u as u32), 1.0))
            .collect();
        // Poison the interval twice to make staying clearly bad.
        s.announce_competing(busy, &postings);
        let report = s.announce_competing(busy, &postings);
        let events_after = s.schedule().events_at(busy).len();
        assert!(
            events_after <= events_before,
            "poisoned interval should not gain events"
        );
        // Any moves recorded must have actually been applied.
        for &(e, t) in &report.moves {
            assert_eq!(s.schedule().interval_of(e), Some(t));
        }
    }

    #[test]
    fn cancel_event_backfills() {
        let (inst, schedule) = session(5, 6);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let victim = schedule.scheduled_events()[0];
        let report = s.cancel_event(victim).unwrap();
        assert!(!s.schedule().contains(victim) || report.moves.iter().any(|&(e, _)| e == victim));
        // 12 events, 6 scheduled → replacements exist; size restored.
        assert_eq!(s.schedule().len(), 6);
        assert!(report.recovered() >= -1e-9);
        inst.check_schedule(s.schedule()).unwrap();
    }

    #[test]
    fn cancel_unscheduled_event_errors() {
        let (inst, schedule) = session(5, 3);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let unscheduled = (0..inst.num_events() as u32)
            .map(EventId::new)
            .find(|&e| !schedule.contains(e))
            .unwrap();
        assert!(s.cancel_event(unscheduled).is_err());
    }

    #[test]
    fn extend_adds_the_greedy_best_event() {
        let (inst, schedule) = session(7, 5);
        let mut s = OnlineSession::new(&inst, &schedule).unwrap();
        let before = s.utility();
        let report = s.extend().expect("unscheduled events remain");
        assert_eq!(s.schedule().len(), 6);
        assert!(report.utility_after >= before);
        assert_eq!(report.moves.len(), 1);
        inst.check_schedule(s.schedule()).unwrap();
        // Extending until no event remains terminates cleanly.
        while s.extend().is_some() {}
        assert!(s.schedule().len() <= inst.num_events());
    }

    #[test]
    fn report_accessors() {
        let r = RepairReport {
            utility_before: 10.0,
            utility_disrupted: 7.0,
            utility_after: 9.0,
            moves: vec![],
        };
        assert!((r.net_loss() - 1.0).abs() < 1e-12);
        assert!((r.recovered() - 2.0).abs() < 1e-12);
    }
}
