//! The algorithm registry: one place that maps scheduler *specs* — typed
//! values or their string spellings — to runnable [`Scheduler`] instances.
//!
//! Front ends (CLI flags, bench configs, service requests) should never
//! string-match algorithm names themselves; they parse a [`SchedulerSpec`]
//! and hand it to [`build`]. Unknown names come back as a typed
//! [`UnknownScheduler`] error that lists every valid spelling.
//!
//! ```
//! use ses_core::registry::{self, SchedulerSpec};
//!
//! let spec: SchedulerSpec = "GRD+LS".parse().unwrap();
//! assert_eq!(spec, SchedulerSpec::GreedyLocalSearch);
//! assert_eq!(spec.name(), "GRD+LS");
//! let scheduler = registry::build(spec);
//! assert_eq!(scheduler.name(), "LS"); // the pipeline's final stage
//!
//! // Stochastic specs carry their seed; `RAND:42` pins it in the string.
//! assert_eq!("RAND:42".parse(), Ok(SchedulerSpec::Random(42)));
//!
//! // Unknown names are typed errors listing the valid specs.
//! let err = "FANCY".parse::<SchedulerSpec>().unwrap_err();
//! assert!(err.to_string().contains("GRD"));
//! ```

use crate::algorithms::{
    AnnealingScheduler, ExactScheduler, GreedyHeapScheduler, GreedyScheduler, LocalSearchScheduler,
    RandomScheduler, Scheduler, TopScheduler,
};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A typed description of *which* scheduler to run (and with what seed).
///
/// Specs are plain data: serializable, comparable, and cheap to copy — the
/// wire-format counterpart of a `Box<dyn Scheduler>`. [`build`] turns a spec
/// into the live algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerSpec {
    /// The paper's greedy, list-based (Algorithm 1), with a dirty-interval
    /// filtered rescan after each commit. Name: `GRD`.
    Greedy,
    /// CELF-style lazy greedy: stale-tagged max-heap over the engine's
    /// dirty-interval generations. Name: `GRD-PQ` (aliases `LAZY`, `CELF`,
    /// `GRD-PQ-LAZY`).
    GreedyHeap,
    /// The TOP baseline. Name: `TOP`.
    Top,
    /// The RAND baseline with its RNG seed. Name: `RAND` (or `RAND:seed`).
    Random(u64),
    /// GRD followed by local search. Name: `GRD+LS`.
    GreedyLocalSearch,
    /// GRD followed by simulated annealing. Name: `GRD+SA`.
    GreedyAnnealing,
    /// The exact branch-and-bound oracle (small instances). Name: `EXACT`.
    Exact,
}

/// The canonical spec names [`SchedulerSpec::parse`] accepts, in display
/// order. Aliases (`PQ`, `LAZY`, `CELF`, `LS`, `RANDOM`, …) and a `:seed`
/// suffix on `RAND` are accepted too.
pub const SPEC_NAMES: &[&str] = &["GRD", "GRD-PQ", "TOP", "RAND", "GRD+LS", "GRD+SA", "EXACT"];

/// Accepted alias spellings, shown alongside [`SPEC_NAMES`] in the
/// [`UnknownScheduler`] message so a near-miss (`lazy-grd`, `celf2`, …)
/// surfaces every spelling that *would* have worked. Keep in lockstep with
/// the `match` in [`SchedulerSpec::parse`] (pinned by a test).
pub const SPEC_ALIASES: &[&str] = &[
    "LAZY",
    "CELF",
    "GRD-PQ-LAZY",
    "PQ",
    "GRDPQ",
    "LS",
    "GRDLS",
    "SA",
    "GRDSA",
    "RANDOM",
    "GREEDY",
];

impl SchedulerSpec {
    /// The paper's method set (Fig. 1): GRD, TOP, RAND (seed 0).
    pub fn paper_set() -> Vec<SchedulerSpec> {
        vec![
            SchedulerSpec::Greedy,
            SchedulerSpec::Top,
            SchedulerSpec::Random(0),
        ]
    }

    /// Parses a spec from its CLI/config spelling (case-insensitive).
    ///
    /// Accepted: `GRD`; `GRD-PQ`/`GRDPQ`/`PQ`/`LAZY`/`CELF`/`GRD-PQ-LAZY`;
    /// `TOP`; `RAND`/`RANDOM` (optionally `RAND:seed`);
    /// `GRD+LS`/`GRDLS`/`LS`; `GRD+SA`/`GRDSA`/`SA`; `EXACT`. Anything else
    /// is an [`UnknownScheduler`] listing the valid spellings.
    pub fn parse(s: &str) -> Result<Self, UnknownScheduler> {
        let upper = s.trim().to_ascii_uppercase();
        let (name, seed) = match upper.split_once(':') {
            Some((name, seed_str)) => {
                let seed = seed_str.parse::<u64>().map_err(|_| UnknownScheduler {
                    name: s.trim().to_owned(),
                })?;
                (name, Some(seed))
            }
            None => (upper.as_str(), None),
        };
        let spec = match name {
            "GRD" | "GREEDY" => SchedulerSpec::Greedy,
            "GRD-PQ" | "GRDPQ" | "PQ" | "LAZY" | "CELF" | "GRD-PQ-LAZY" => {
                SchedulerSpec::GreedyHeap
            }
            "TOP" => SchedulerSpec::Top,
            "RAND" | "RANDOM" => SchedulerSpec::Random(seed.unwrap_or(0)),
            "GRD+LS" | "GRDLS" | "LS" => SchedulerSpec::GreedyLocalSearch,
            "GRD+SA" | "GRDSA" | "SA" => SchedulerSpec::GreedyAnnealing,
            "EXACT" => SchedulerSpec::Exact,
            _ => {
                return Err(UnknownScheduler {
                    name: s.trim().to_owned(),
                })
            }
        };
        // A seed suffix only makes sense on the stochastic spec.
        match (spec, seed) {
            (SchedulerSpec::Random(_), _) | (_, None) => Ok(spec),
            _ => Err(UnknownScheduler {
                name: s.trim().to_owned(),
            }),
        }
    }

    /// Re-seeds the spec if it is stochastic; deterministic specs are
    /// returned unchanged. Lets front ends apply a global `--seed` flag
    /// without matching on variants.
    pub fn with_seed(self, seed: u64) -> Self {
        match self {
            SchedulerSpec::Random(_) => SchedulerSpec::Random(seed),
            other => other,
        }
    }

    /// The stable display name used in reports and figures. Composite specs
    /// report the full pipeline (`GRD+LS`), while the built scheduler's own
    /// [`Scheduler::name`] reports only the post-optimizer stage (`LS`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSpec::Greedy => "GRD",
            SchedulerSpec::GreedyHeap => "GRD-PQ",
            SchedulerSpec::Top => "TOP",
            SchedulerSpec::Random(_) => "RAND",
            SchedulerSpec::GreedyLocalSearch => "GRD+LS",
            SchedulerSpec::GreedyAnnealing => "GRD+SA",
            SchedulerSpec::Exact => "EXACT",
        }
    }
}

impl fmt::Display for SchedulerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerSpec::Random(seed) => write!(f, "RAND:{seed}"),
            other => f.write_str(other.name()),
        }
    }
}

impl FromStr for SchedulerSpec {
    type Err = UnknownScheduler;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchedulerSpec::parse(s)
    }
}

/// A scheduler spec string that matched no registered algorithm.
///
/// The `Display` form lists every valid canonical spelling, so surfacing
/// this error verbatim gives users an actionable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheduler {
    /// The rejected input.
    pub name: String,
}

impl fmt::Display for UnknownScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scheduler '{}' (valid specs: {}; aliases: {})",
            self.name,
            SPEC_NAMES.join(", "),
            SPEC_ALIASES.join(", ")
        )
    }
}

impl std::error::Error for UnknownScheduler {}

/// Instantiates the scheduler a spec describes (serial scoring).
///
/// The returned box is `Send + Sync`, so built schedulers can be shared
/// across the bench harness's scoped threads or stored in services.
pub fn build(spec: SchedulerSpec) -> Box<dyn Scheduler + Send + Sync> {
    build_threaded(spec, 1)
}

/// Instantiates the scheduler a spec describes, sharding its scoring sweeps
/// across up to `threads` scoped threads (`0` is treated as `1`).
///
/// The thread count applies to the greedy-family sweeps (GRD, GRD-PQ, TOP —
/// including the GRD stage inside `GRD+LS`/`GRD+SA`); RAND and EXACT have no
/// batch sweep and ignore it. Parallel and serial runs pick identical
/// schedules — sharded scoring reads frozen engine state.
pub fn build_threaded(spec: SchedulerSpec, threads: usize) -> Box<dyn Scheduler + Send + Sync> {
    let threads = threads.max(1);
    match spec {
        SchedulerSpec::Greedy => Box::new(GreedyScheduler::with_threads(threads)),
        SchedulerSpec::GreedyHeap => Box::new(GreedyHeapScheduler::with_threads(threads)),
        SchedulerSpec::Top => Box::new(TopScheduler::with_threads(threads)),
        SchedulerSpec::Random(seed) => Box::new(RandomScheduler::new(seed)),
        SchedulerSpec::GreedyLocalSearch => Box::new(LocalSearchScheduler::new(
            GreedyScheduler::with_threads(threads),
        )),
        SchedulerSpec::GreedyAnnealing => Box::new(AnnealingScheduler::new(
            GreedyScheduler::with_threads(threads),
        )),
        SchedulerSpec::Exact => Box::new(ExactScheduler::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn parses_canonical_names_and_aliases() {
        assert_eq!(SchedulerSpec::parse("grd"), Ok(SchedulerSpec::Greedy));
        assert_eq!(SchedulerSpec::parse("GREEDY"), Ok(SchedulerSpec::Greedy));
        assert_eq!(SchedulerSpec::parse("PQ"), Ok(SchedulerSpec::GreedyHeap));
        assert_eq!(
            SchedulerSpec::parse("grd-pq"),
            Ok(SchedulerSpec::GreedyHeap)
        );
        // The CELF lazy greedy's alias family all lands on GRD-PQ.
        assert_eq!(SchedulerSpec::parse("LAZY"), Ok(SchedulerSpec::GreedyHeap));
        assert_eq!(SchedulerSpec::parse("celf"), Ok(SchedulerSpec::GreedyHeap));
        assert_eq!(
            SchedulerSpec::parse("grd-pq-lazy"),
            Ok(SchedulerSpec::GreedyHeap)
        );
        assert_eq!(SchedulerSpec::parse("TOP"), Ok(SchedulerSpec::Top));
        assert_eq!(SchedulerSpec::parse("random"), Ok(SchedulerSpec::Random(0)));
        assert_eq!(
            SchedulerSpec::parse("RAND:123"),
            Ok(SchedulerSpec::Random(123))
        );
        assert_eq!(
            SchedulerSpec::parse(" ls "),
            Ok(SchedulerSpec::GreedyLocalSearch)
        );
        assert_eq!(
            SchedulerSpec::parse("GRD+SA"),
            Ok(SchedulerSpec::GreedyAnnealing)
        );
        assert_eq!(SchedulerSpec::parse("exact"), Ok(SchedulerSpec::Exact));
    }

    #[test]
    fn rejects_unknown_names_with_listing() {
        let err = SchedulerSpec::parse("GRD2").unwrap_err();
        assert_eq!(err.name, "GRD2");
        let msg = err.to_string();
        for name in SPEC_NAMES {
            assert!(msg.contains(name), "message must list {name}: {msg}");
        }
        for alias in SPEC_ALIASES {
            assert!(
                msg.contains(alias),
                "message must list alias {alias}: {msg}"
            );
        }
        // Seed suffixes only apply to RAND; a bad seed is rejected too.
        assert!(SchedulerSpec::parse("GRD:4").is_err());
        assert!(SchedulerSpec::parse("LAZY:4").is_err());
        assert!(SchedulerSpec::parse("RAND:notanumber").is_err());
    }

    #[test]
    fn every_listed_alias_parses() {
        // SPEC_ALIASES documents working spellings; a listed alias that
        // fails to parse (or a canonical name missing from SPEC_NAMES)
        // would make the UnknownScheduler message lie.
        for spelling in SPEC_NAMES.iter().chain(SPEC_ALIASES) {
            assert!(
                SchedulerSpec::parse(spelling).is_ok(),
                "listed spelling '{spelling}' does not parse"
            );
        }
    }

    #[test]
    fn with_seed_touches_only_stochastic_specs() {
        assert_eq!(
            SchedulerSpec::Random(0).with_seed(9),
            SchedulerSpec::Random(9)
        );
        assert_eq!(SchedulerSpec::Greedy.with_seed(9), SchedulerSpec::Greedy);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let specs = [
            SchedulerSpec::Greedy,
            SchedulerSpec::GreedyHeap,
            SchedulerSpec::Top,
            SchedulerSpec::Random(77),
            SchedulerSpec::GreedyLocalSearch,
            SchedulerSpec::GreedyAnnealing,
            SchedulerSpec::Exact,
        ];
        for spec in specs {
            let text = spec.to_string();
            assert_eq!(SchedulerSpec::parse(&text), Ok(spec), "spec {text}");
        }
    }

    #[test]
    fn built_schedulers_match_spec_names_and_run() {
        let inst = testkit::small_instance(3);
        for name in SPEC_NAMES {
            let spec = SchedulerSpec::parse(name).unwrap();
            let scheduler = build(spec);
            // Composite specs (GRD+LS, GRD+SA) report the full pipeline
            // while the built scheduler names its final stage.
            assert!(
                spec.name().contains(scheduler.name()),
                "spec {} vs scheduler {}",
                spec.name(),
                scheduler.name()
            );
            let out = scheduler.run(&inst, 2).unwrap();
            inst.check_schedule(&out.schedule).unwrap();
        }
    }

    #[test]
    fn build_threaded_preserves_results_for_every_spec() {
        // `threads` is a wall-clock knob, never a semantics knob: every
        // spec must produce the same schedule size and utility regardless.
        let inst = testkit::medium_instance(9);
        for name in SPEC_NAMES {
            let spec = SchedulerSpec::parse(name).unwrap();
            let serial = build(spec).run(&inst, 3).unwrap();
            let threaded = build_threaded(spec, 4).run(&inst, 3).unwrap();
            assert_eq!(serial.len(), threaded.len(), "spec {name}");
            assert!(
                (serial.total_utility - threaded.total_utility).abs() < 1e-9,
                "spec {name}: {} vs {}",
                serial.total_utility,
                threaded.total_utility
            );
        }
    }

    #[test]
    fn paper_set_is_the_figure_one_lineup() {
        let names: Vec<&str> = SchedulerSpec::paper_set()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, ["GRD", "TOP", "RAND"]);
    }
}
