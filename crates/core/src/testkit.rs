//! Deterministic instance factories for tests, property tests, benches and
//! quick experiments.
//!
//! Everything here is seeded and reproducible. These are *not* the paper's
//! experimental workloads (those live in the `ses-datagen` crate, built on
//! the EBSN substrate); they are small, structurally varied instances for
//! exercising engine and algorithm behaviour.

use crate::activity::{ConstantActivity, HashedActivity};
use crate::ids::{CompetingEventId, EventId, IntervalId, LocationId, UserId};
use crate::instance::SesInstance;
use crate::interest::InterestBuilder;
use crate::model::{uniform_grid, CandidateEvent, CompetingEvent, Organizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Shape of a random test instance.
#[derive(Debug, Clone)]
pub struct TestInstanceConfig {
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Number of candidate events `|E|`.
    pub num_events: usize,
    /// Number of intervals `|T|`.
    pub num_intervals: usize,
    /// Number of competing events `|C|` (spread uniformly over intervals).
    pub num_competing: usize,
    /// Number of distinct locations events are drawn from.
    pub num_locations: usize,
    /// Organizer budget θ.
    pub theta: f64,
    /// Required resources drawn uniformly from `[1, xi_max]`.
    pub xi_max: f64,
    /// Probability that a (user, event) pair has non-zero interest.
    pub interest_density: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TestInstanceConfig {
    fn default() -> Self {
        Self {
            num_users: 30,
            num_events: 12,
            num_intervals: 6,
            num_competing: 10,
            num_locations: 4,
            theta: 10.0,
            xi_max: 3.0,
            interest_density: 0.4,
            seed: 0,
        }
    }
}

/// Builds a random sparse instance from a config. Deterministic in the seed.
pub fn random_instance(cfg: &TestInstanceConfig) -> Arc<SesInstance> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut interest = InterestBuilder::new(cfg.num_users, cfg.num_events, cfg.num_competing);
    for u in 0..cfg.num_users {
        for e in 0..cfg.num_events {
            if rng.gen_bool(cfg.interest_density) {
                interest
                    .set(
                        UserId::new(u as u32),
                        EventId::new(e as u32),
                        rng.gen_range(0.05..=1.0),
                    )
                    .expect("generated value in range");
            }
        }
        for c in 0..cfg.num_competing {
            if rng.gen_bool(cfg.interest_density) {
                interest
                    .set(
                        UserId::new(u as u32),
                        CompetingEventId::new(c as u32),
                        rng.gen_range(0.05..=1.0),
                    )
                    .expect("generated value in range");
            }
        }
    }
    let events = (0..cfg.num_events)
        .map(|e| {
            CandidateEvent::new(
                EventId::new(e as u32),
                LocationId::new(rng.gen_range(0..cfg.num_locations.max(1)) as u32),
                if cfg.xi_max > 1.0 {
                    rng.gen_range(1.0..=cfg.xi_max)
                } else {
                    cfg.xi_max
                },
            )
        })
        .collect();
    let competing = (0..cfg.num_competing)
        .map(|c| {
            CompetingEvent::new(
                CompetingEventId::new(c as u32),
                IntervalId::new(rng.gen_range(0..cfg.num_intervals.max(1)) as u32),
            )
        })
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(cfg.theta))
        .intervals(uniform_grid(cfg.num_intervals, 100))
        .events(events)
        .competing(competing)
        .interest(interest.build_sparse().unwrap())
        .activity(HashedActivity::standard(
            cfg.num_users,
            cfg.num_intervals,
            cfg.seed ^ 0x5eed,
        ))
        .build_shared()
        .expect("generated instance must validate")
}

/// The canonical serving-workload instance: the sizing `ses simulate`,
/// `ses serve` and the server replay check all share, parameterized only by
/// the four knobs they expose. Keeping this in one place is what makes the
/// server-vs-simulator determinism digest comparable — both sides must build
/// bit-identical instances from `(users, events, intervals, seed)`.
pub fn workload_instance(
    users: usize,
    events: usize,
    intervals: usize,
    seed: u64,
) -> Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users: users,
        num_events: events,
        num_intervals: intervals,
        num_competing: events / 2,
        num_locations: (events / 3).max(1),
        theta: 20.0,
        xi_max: 3.0,
        interest_density: 0.2,
        seed,
    })
}

/// A medium instance: 30 users, 12 events, 6 intervals, 10 competing events.
pub fn medium_instance(seed: u64) -> Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        seed,
        ..TestInstanceConfig::default()
    })
}

/// A small instance suitable for the exact solver: 8 users, 6 events,
/// 3 intervals, 4 competing events.
pub fn small_instance(seed: u64) -> Arc<SesInstance> {
    random_instance(&TestInstanceConfig {
        num_users: 8,
        num_events: 6,
        num_intervals: 3,
        num_competing: 4,
        num_locations: 3,
        theta: 6.0,
        xi_max: 3.0,
        interest_density: 0.5,
        seed,
    })
}

/// One interval, every event at the same location: at most one event can
/// ever be scheduled. Exercises the `complete = false` paths.
pub fn single_slot_shared_location(num_events: usize) -> Arc<SesInstance> {
    let num_users = 5;
    let mut interest = InterestBuilder::new(num_users, num_events, 0);
    for u in 0..num_users {
        for e in 0..num_events {
            interest
                .set(
                    UserId::new(u as u32),
                    EventId::new(e as u32),
                    0.1 + 0.8 * ((u + e) % num_users) as f64 / num_users as f64,
                )
                .unwrap();
        }
    }
    let events = (0..num_events)
        .map(|e| CandidateEvent::new(EventId::new(e as u32), LocationId::new(0), 1.0))
        .collect();
    SesInstance::builder()
        .organizer(Organizer::new(100.0))
        .intervals(uniform_grid(1, 100))
        .events(events)
        .interest(interest.build_sparse().unwrap())
        .activity(ConstantActivity::new(num_users, 1, 1.0).unwrap())
        .build_shared()
        .unwrap()
}

/// A fully deterministic 2-user / 3-event / 2-interval instance with one
/// competing event, for hand-verifiable assertions.
///
/// * `µ(u0,e0)=0.8, µ(u0,e1)=0.4, µ(u1,e1)=0.5, µ(u1,e2)=0.6, µ(u0,c0)=0.5`
/// * `c0` sits at `t0`; `σ ≡ 1`; `θ = 10`; distinct locations; `ξ = 1`.
pub fn hand_instance() -> Arc<SesInstance> {
    let mut interest = InterestBuilder::new(2, 3, 1);
    interest.set(UserId::new(0), EventId::new(0), 0.8).unwrap();
    interest.set(UserId::new(0), EventId::new(1), 0.4).unwrap();
    interest.set(UserId::new(1), EventId::new(1), 0.5).unwrap();
    interest.set(UserId::new(1), EventId::new(2), 0.6).unwrap();
    interest
        .set(UserId::new(0), CompetingEventId::new(0), 0.5)
        .unwrap();
    SesInstance::builder()
        .organizer(Organizer::new(10.0))
        .intervals(uniform_grid(2, 100))
        .events(vec![
            CandidateEvent::new(EventId::new(0), LocationId::new(0), 1.0),
            CandidateEvent::new(EventId::new(1), LocationId::new(1), 1.0),
            CandidateEvent::new(EventId::new(2), LocationId::new(2), 1.0),
        ])
        .competing(vec![CompetingEvent::new(
            CompetingEventId::new(0),
            IntervalId::new(0),
        )])
        .interest(interest.build_sparse().unwrap())
        .activity(ConstantActivity::new(2, 2, 1.0).unwrap())
        .build_shared()
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_instance_is_deterministic_in_seed() {
        let a = medium_instance(9);
        let b = medium_instance(9);
        assert_eq!(a.num_events(), b.num_events());
        assert_eq!(
            a.mu(UserId::new(0), EventId::new(0)),
            b.mu(UserId::new(0), EventId::new(0))
        );
        assert_eq!(
            a.event(EventId::new(3)).location,
            b.event(EventId::new(3)).location
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = medium_instance(1);
        let b = medium_instance(2);
        let differs = (0..a.num_events()).any(|e| {
            a.event(EventId::new(e as u32)).required_resources
                != b.event(EventId::new(e as u32)).required_resources
        });
        assert!(differs);
    }

    #[test]
    fn factories_validate() {
        // Builders panic on invalid instances, so constructing is the test.
        let _ = small_instance(0);
        let _ = single_slot_shared_location(3);
        let _ = hand_instance();
    }
}
