//! Typed identifiers for the SES domain.
//!
//! All entities are identified by dense `u32` indices wrapped in newtypes so
//! that a [`UserId`] can never be confused with an [`EventId`]. Dense indices
//! (as opposed to interned strings or UUIDs) are deliberate: every hot path in
//! the engine indexes flat arrays by id, which is the cache-friendly layout a
//! scheduling engine wants.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize`, for direct array indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.0 as usize
            }
        }
    };
}

define_id!(
    /// Identifier of a user (potential attendee).
    UserId,
    "u"
);
define_id!(
    /// Identifier of a candidate event (an event the organizer may schedule).
    EventId,
    "e"
);
define_id!(
    /// Identifier of a competing event (already scheduled by a third party).
    CompetingEventId,
    "c"
);
define_id!(
    /// Identifier of a candidate time interval.
    IntervalId,
    "t"
);
define_id!(
    /// Identifier of a location (e.g. a stage or a hall).
    LocationId,
    "l"
);

/// A reference to *any* event a user can be interested in: either a candidate
/// event of the organizer or a competing third-party event.
///
/// The interest function `µ : U × (E ∪ C) → [0,1]` of the paper is defined
/// over this union type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EventRef {
    /// A candidate event (member of `E`).
    Candidate(EventId),
    /// A competing event (member of `C`).
    Competing(CompetingEventId),
}

impl EventRef {
    /// Returns the candidate event id, if this refers to a candidate event.
    #[inline]
    pub fn candidate(self) -> Option<EventId> {
        match self {
            EventRef::Candidate(e) => Some(e),
            EventRef::Competing(_) => None,
        }
    }

    /// Returns the competing event id, if this refers to a competing event.
    #[inline]
    pub fn competing(self) -> Option<CompetingEventId> {
        match self {
            EventRef::Candidate(_) => None,
            EventRef::Competing(c) => Some(c),
        }
    }
}

impl From<EventId> for EventRef {
    #[inline]
    fn from(e: EventId) -> Self {
        EventRef::Candidate(e)
    }
}

impl From<CompetingEventId> for EventRef {
    #[inline]
    fn from(c: CompetingEventId) -> Self {
        EventRef::Competing(c)
    }
}

impl fmt::Display for EventRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventRef::Candidate(e) => write!(f, "{e}"),
            EventRef::Competing(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw() {
        let u = UserId::new(7);
        assert_eq!(u.raw(), 7);
        assert_eq!(u.index(), 7);
        assert_eq!(u32::from(u), 7);
        assert_eq!(usize::from(u), 7);
        assert_eq!(UserId::from(7), u);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(EventId::new(1) < EventId::new(2));
        assert!(IntervalId::new(0) < IntervalId::new(10));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(UserId::new(3).to_string(), "u3");
        assert_eq!(EventId::new(4).to_string(), "e4");
        assert_eq!(CompetingEventId::new(5).to_string(), "c5");
        assert_eq!(IntervalId::new(6).to_string(), "t6");
        assert_eq!(LocationId::new(7).to_string(), "l7");
    }

    #[test]
    fn event_ref_projection() {
        let r: EventRef = EventId::new(1).into();
        assert_eq!(r.candidate(), Some(EventId::new(1)));
        assert_eq!(r.competing(), None);

        let r: EventRef = CompetingEventId::new(2).into();
        assert_eq!(r.candidate(), None);
        assert_eq!(r.competing(), Some(CompetingEventId::new(2)));
    }

    #[test]
    fn event_ref_display() {
        assert_eq!(EventRef::Candidate(EventId::new(1)).to_string(), "e1");
        assert_eq!(
            EventRef::Competing(CompetingEventId::new(2)).to_string(),
            "c2"
        );
    }

    #[test]
    fn serde_transparent() {
        let json = serde_json::to_string(&UserId::new(42)).unwrap();
        assert_eq!(json, "42");
        let back: UserId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, UserId::new(42));
    }
}
