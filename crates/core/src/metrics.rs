//! Schedule quality reports beyond the single Ω number.
//!
//! Organizers reading a schedule want more than the objective value: how
//! full each interval is, how attendance spreads across events (a festival
//! of one blockbuster and nineteen empty rooms has the same Ω as twenty
//! balanced events), and how much of the population is reached at all.

use crate::engine::{evaluate_schedule, AttendanceEngine};
use crate::ids::IntervalId;
use crate::instance::SesInstance;
use crate::schedule::Schedule;
use std::sync::Arc;

/// Per-interval usage line.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalReport {
    /// The interval.
    pub interval: IntervalId,
    /// Events scheduled there.
    pub num_events: usize,
    /// Competing events pinned there.
    pub num_competing: usize,
    /// Resources in use vs. the budget θ.
    pub used_resources: f64,
    /// Total expected attendance of the interval.
    pub utility: f64,
}

/// Aggregate quality metrics of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// Total utility Ω (Eq. 3).
    pub total_utility: f64,
    /// Expected attendance of the best-attended event.
    pub max_event_attendance: f64,
    /// Expected attendance of the worst-attended scheduled event.
    pub min_event_attendance: f64,
    /// Mean expected attendance per scheduled event.
    pub mean_event_attendance: f64,
    /// Gini coefficient of per-event attendance (0 = perfectly balanced,
    /// → 1 = all attendance concentrated on one event).
    pub attendance_gini: f64,
    /// Number of intervals holding at least one event.
    pub occupied_intervals: usize,
    /// Largest number of events sharing one interval.
    pub max_events_per_interval: usize,
    /// Mean fraction of the resource budget used over occupied intervals.
    pub mean_resource_utilization: f64,
    /// Expected number of *distinct* users attending something — i.e.
    /// `Σ_u (1 − Π_t (1 − Σ_{e ∈ E_t} ρ(u,e,t)))`, assuming independence
    /// across intervals.
    pub expected_reach: f64,
    /// Per-interval breakdown.
    pub intervals: Vec<IntervalReport>,
}

/// An admissible upper bound on the optimal utility `Ω(S*)` for schedules
/// of size `k`: the sum of the `k` largest *solo scores* —
/// `max_t score(e → t | ∅)` per event.
///
/// Per-user marginal gains diminish as intervals fill (`x ↦ x/(B+x)` is
/// concave — see `engine.rs`), so every event's realized gain is bounded by
/// its empty-schedule score; summing the `k` best bounds any feasible
/// schedule. The bound ignores location/resource interactions, so it is
/// loose but cheap (`O(|E||T|·postings)`) — usable at full experiment scale
/// where the exact solver is hopeless. `GRD utility / upper bound` is then
/// a *certified* quality floor.
pub fn utility_upper_bound(inst: &Arc<SesInstance>, k: usize) -> f64 {
    let mut engine = AttendanceEngine::new(inst);
    let mut solos: Vec<f64> = (0..inst.num_events())
        .map(|e| {
            let event = crate::ids::EventId::new(e as u32);
            engine.score_all(event).into_iter().fold(0.0f64, f64::max)
        })
        .collect();
    solos.sort_unstable_by(|a, b| b.total_cmp(a));
    solos.iter().take(k).sum()
}

/// Gini coefficient of a non-negative sample (0 for empty/all-zero input).
fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    // G = (2·Σ_i i·x_(i) / (n·Σ x)) − (n+1)/n  with 1-based ranks.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted / (n as f64 * sum) - (n as f64 + 1.0) / n as f64).max(0.0)
}

/// Computes the full metrics report for a feasible schedule.
pub fn schedule_metrics(inst: &Arc<SesInstance>, schedule: &Schedule) -> ScheduleMetrics {
    let eval = evaluate_schedule(inst, schedule);
    let engine = AttendanceEngine::with_schedule(inst, schedule)
        .expect("metrics requires a feasible schedule");

    let attendances: Vec<f64> = eval.per_event.iter().map(|&(_, _, w)| w).collect();
    let (mut max_a, mut min_a, mut sum_a) = (0.0f64, f64::INFINITY, 0.0f64);
    for &a in &attendances {
        max_a = max_a.max(a);
        min_a = min_a.min(a);
        sum_a += a;
    }
    if attendances.is_empty() {
        min_a = 0.0;
    }

    let mut intervals = Vec::new();
    let mut max_per_interval = 0usize;
    let mut utilization_sum = 0.0;
    for t in 0..inst.num_intervals() {
        let interval = IntervalId::new(t as u32);
        let events = schedule.events_at(interval);
        if events.is_empty() {
            continue;
        }
        max_per_interval = max_per_interval.max(events.len());
        let used: f64 = events
            .iter()
            .map(|&e| inst.event(e).required_resources)
            .sum();
        utilization_sum += used / inst.budget();
        intervals.push(IntervalReport {
            interval,
            num_events: events.len(),
            num_competing: inst.competing_at(interval).len(),
            used_resources: used,
            utility: engine.interval_utility(interval),
        });
    }

    // Expected reach: per user, probability of attending ≥ 1 scheduled event
    // across intervals (independent across intervals in the model).
    let mut reach = 0.0;
    for u in 0..inst.num_users() {
        let user = crate::ids::UserId::new(u as u32);
        let mut p_none = 1.0;
        for report in &intervals {
            let p_attend: f64 = schedule
                .events_at(report.interval)
                .iter()
                .map(|&e| engine.attendance_probability(user, e).unwrap_or(0.0))
                .sum();
            p_none *= (1.0 - p_attend).max(0.0);
        }
        reach += 1.0 - p_none;
    }

    let n = attendances.len();
    ScheduleMetrics {
        total_utility: eval.total_utility,
        max_event_attendance: max_a,
        min_event_attendance: min_a,
        mean_event_attendance: if n == 0 { 0.0 } else { sum_a / n as f64 },
        attendance_gini: gini(&attendances),
        occupied_intervals: intervals.len(),
        max_events_per_interval: max_per_interval,
        mean_resource_utilization: if intervals.is_empty() {
            0.0
        } else {
            utilization_sum / intervals.len() as f64
        },
        expected_reach: reach,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{GreedyScheduler, Scheduler};
    use crate::ids::{EventId, IntervalId};
    use crate::testkit;
    use crate::util::float::approx_eq;

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert!(gini(&[5.0, 5.0, 5.0]).abs() < 1e-12, "equal values → 0");
        // All mass on one of two: G = 1/2 for n = 2.
        assert!(approx_eq(gini(&[0.0, 10.0]), 0.5));
        // More unequal → larger.
        assert!(gini(&[1.0, 9.0]) > gini(&[4.0, 6.0]));
    }

    #[test]
    fn metrics_on_empty_schedule() {
        let inst = testkit::medium_instance(0);
        let m = schedule_metrics(&inst, &inst.empty_schedule());
        assert_eq!(m.total_utility, 0.0);
        assert_eq!(m.occupied_intervals, 0);
        assert_eq!(m.expected_reach, 0.0);
        assert_eq!(m.mean_event_attendance, 0.0);
        assert!(m.intervals.is_empty());
    }

    #[test]
    fn metrics_match_engine_quantities() {
        let inst = testkit::medium_instance(3);
        let out = GreedyScheduler::new().run(&inst, 6).unwrap();
        let m = schedule_metrics(&inst, &out.schedule);
        assert!(approx_eq(m.total_utility, out.total_utility));
        let interval_sum: f64 = m.intervals.iter().map(|r| r.utility).sum();
        assert!(approx_eq(interval_sum, m.total_utility));
        assert!(m.max_event_attendance >= m.mean_event_attendance);
        assert!(m.mean_event_attendance >= m.min_event_attendance);
        assert!((0.0..=1.0).contains(&m.attendance_gini));
        assert!(m.max_events_per_interval >= 1);
        assert!(m.mean_resource_utilization > 0.0 && m.mean_resource_utilization <= 1.0);
    }

    #[test]
    fn reach_is_bounded_by_population_and_utility() {
        let inst = testkit::medium_instance(5);
        let out = GreedyScheduler::new().run(&inst, 8).unwrap();
        let m = schedule_metrics(&inst, &out.schedule);
        assert!(m.expected_reach <= inst.num_users() as f64 + 1e-9);
        // Reach counts each user at most once; Ω can count a user once per
        // interval, so reach ≤ Ω always… only when intervals are disjoint
        // probabilities — in general reach ≤ Ω because 1−Π(1−p_t) ≤ Σ p_t.
        assert!(m.expected_reach <= m.total_utility + 1e-9);
        assert!(m.expected_reach > 0.0);
    }

    #[test]
    fn per_interval_reports_are_consistent() {
        let inst = testkit::medium_instance(7);
        let out = GreedyScheduler::new().run(&inst, 6).unwrap();
        let m = schedule_metrics(&inst, &out.schedule);
        for r in &m.intervals {
            assert_eq!(r.num_events, out.schedule.events_at(r.interval).len());
            assert!(r.used_resources <= inst.budget() + 1e-9);
            assert!(r.utility >= 0.0);
        }
        let scheduled_total: usize = m.intervals.iter().map(|r| r.num_events).sum();
        assert_eq!(scheduled_total, out.len());
    }

    #[test]
    fn upper_bound_dominates_exact_and_heuristics() {
        use crate::algorithms::ExactScheduler;
        for seed in 0..5u64 {
            let inst = testkit::small_instance(seed);
            let k = 3;
            let ub = utility_upper_bound(&inst, k);
            let opt = ExactScheduler::new().run(&inst, k).unwrap().total_utility;
            let grd = GreedyScheduler::new().run(&inst, k).unwrap().total_utility;
            assert!(ub >= opt - 1e-9, "seed {seed}: UB {ub} < OPT {opt}");
            assert!(ub >= grd - 1e-9);
        }
    }

    #[test]
    fn upper_bound_monotone_in_k_and_zero_at_zero() {
        let inst = testkit::medium_instance(2);
        assert_eq!(utility_upper_bound(&inst, 0), 0.0);
        let mut prev = 0.0;
        for k in 1..=inst.num_events() {
            let ub = utility_upper_bound(&inst, k);
            assert!(ub >= prev - 1e-12, "UB must be monotone in k");
            prev = ub;
        }
        // Beyond |E| the bound saturates.
        assert_eq!(
            utility_upper_bound(&inst, inst.num_events()),
            utility_upper_bound(&inst, inst.num_events() + 10)
        );
    }

    #[test]
    fn single_assignment_metrics() {
        let inst = testkit::hand_instance();
        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(1)).unwrap();
        let m = schedule_metrics(&inst, &s);
        // e0 at t1: only user0, ρ = 1 → every aggregate collapses to 1.
        assert!(approx_eq(m.total_utility, 1.0));
        assert!(approx_eq(m.max_event_attendance, 1.0));
        assert!(approx_eq(m.expected_reach, 1.0));
        assert_eq!(m.occupied_intervals, 1);
        assert_eq!(m.attendance_gini, 0.0);
    }
}
