//! The SES problem instance: everything an algorithm needs to schedule.

use crate::activity::ActivityModel;
use crate::ids::{CompetingEventId, EventId, IntervalId, UserId};
use crate::interest::InterestModel;
use crate::model::{CandidateEvent, CompetingEvent, Organizer, TimeInterval};
use crate::schedule::Schedule;
use std::fmt;
use std::sync::Arc;

/// Validation failures detected by [`InstanceBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Entity ids must be dense and in positional order (`events[i].id == i`).
    NonDenseIds {
        /// Which collection is broken.
        what: &'static str,
        /// Position of the offending entity.
        position: usize,
    },
    /// Two candidate intervals overlap in time (the paper requires `T` disjoint).
    OverlappingIntervals {
        /// First interval.
        a: IntervalId,
        /// Second interval.
        b: IntervalId,
    },
    /// A competing event references an interval outside `T`.
    CompetingIntervalOutOfBounds {
        /// The competing event.
        competing: CompetingEventId,
        /// The missing interval.
        interval: IntervalId,
    },
    /// Required resources must be non-negative and finite.
    InvalidRequiredResources {
        /// The event with the bad `ξ`.
        event: EventId,
        /// The rejected value.
        value: f64,
    },
    /// The organizer budget `θ` must be positive.
    InvalidBudget {
        /// The rejected value.
        value: f64,
    },
    /// Interest model universe sizes disagree with the entity collections.
    InterestShapeMismatch {
        /// Expected `(|U|, |E|, |C|)`.
        expected: (usize, usize, usize),
        /// What the interest model reports.
        actual: (usize, usize, usize),
    },
    /// Activity model universe sizes disagree with the entity collections.
    ActivityShapeMismatch {
        /// Expected `(|U|, |T|)`.
        expected: (usize, usize),
        /// What the activity model reports.
        actual: (usize, usize),
    },
    /// A required component was not supplied to the builder.
    Missing {
        /// Which component.
        what: &'static str,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NonDenseIds { what, position } => {
                write!(
                    f,
                    "{what}[{position}] has a non-dense id (expected id == position)"
                )
            }
            ValidationError::OverlappingIntervals { a, b } => {
                write!(
                    f,
                    "candidate intervals {a} and {b} overlap; T must be disjoint"
                )
            }
            ValidationError::CompetingIntervalOutOfBounds {
                competing,
                interval,
            } => {
                write!(
                    f,
                    "competing event {competing} references unknown interval {interval}"
                )
            }
            ValidationError::InvalidRequiredResources { event, value } => {
                write!(
                    f,
                    "event {event} has invalid required resources ξ = {value}"
                )
            }
            ValidationError::InvalidBudget { value } => {
                write!(f, "organizer budget θ = {value} must be positive")
            }
            ValidationError::InterestShapeMismatch { expected, actual } => write!(
                f,
                "interest model shape {actual:?} does not match instance {expected:?} (|U|,|E|,|C|)"
            ),
            ValidationError::ActivityShapeMismatch { expected, actual } => write!(
                f,
                "activity model shape {actual:?} does not match instance {expected:?} (|U|,|T|)"
            ),
            ValidationError::Missing { what } => write!(f, "instance is missing {what}"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A feasibility violation of an assignment or a whole schedule
/// (paper §II, "Feasibility").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeasibilityViolation {
    /// Two events at the same interval share a location.
    LocationConflict {
        /// The interval where the conflict occurs.
        interval: IntervalId,
        /// The already-present event.
        existing: EventId,
        /// The conflicting event.
        incoming: EventId,
    },
    /// The per-interval resource budget `θ` would be exceeded.
    ResourcesExceeded {
        /// The interval where the budget breaks.
        interval: IntervalId,
        /// Resources already in use at the interval.
        used: f64,
        /// Resources the incoming event requires.
        requested: f64,
        /// The budget.
        budget: f64,
    },
    /// The event is already scheduled (`e ∈ E(S)` — assignment not *valid*).
    EventAlreadyScheduled {
        /// The event in question.
        event: EventId,
    },
}

impl fmt::Display for FeasibilityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeasibilityViolation::LocationConflict {
                interval,
                existing,
                incoming,
            } => write!(
                f,
                "location conflict at {interval}: {incoming} clashes with {existing}"
            ),
            FeasibilityViolation::ResourcesExceeded {
                interval,
                used,
                requested,
                budget,
            } => write!(
                f,
                "resources exceeded at {interval}: {used} used + {requested} requested > θ = {budget}"
            ),
            FeasibilityViolation::EventAlreadyScheduled { event } => {
                write!(f, "event {event} is already scheduled")
            }
        }
    }
}

impl std::error::Error for FeasibilityViolation {}

/// An immutable, validated SES problem instance.
///
/// Shared behind [`Arc`]s for the model components so instances are cheap to
/// hand to scoped threads in the benchmark harness.
pub struct SesInstance {
    organizer: Organizer,
    intervals: Vec<TimeInterval>,
    events: Vec<CandidateEvent>,
    competing: Vec<CompetingEvent>,
    competing_by_interval: Vec<Vec<CompetingEventId>>,
    interest: Arc<dyn InterestModel>,
    activity: Arc<dyn ActivityModel>,
}

impl fmt::Debug for SesInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SesInstance")
            .field("num_users", &self.num_users())
            .field("num_events", &self.num_events())
            .field("num_intervals", &self.num_intervals())
            .field("num_competing", &self.num_competing())
            .field("theta", &self.organizer.available_resources)
            .finish()
    }
}

impl SesInstance {
    /// Starts building an instance.
    pub fn builder() -> InstanceBuilder {
        InstanceBuilder::default()
    }

    /// The organizer.
    #[inline]
    pub fn organizer(&self) -> &Organizer {
        &self.organizer
    }

    /// The per-interval resource budget `θ`.
    #[inline]
    pub fn budget(&self) -> f64 {
        self.organizer.available_resources
    }

    /// Candidate time intervals `T`.
    #[inline]
    pub fn intervals(&self) -> &[TimeInterval] {
        &self.intervals
    }

    /// Candidate events `E`.
    #[inline]
    pub fn events(&self) -> &[CandidateEvent] {
        &self.events
    }

    /// Competing events `C`.
    #[inline]
    pub fn competing(&self) -> &[CompetingEvent] {
        &self.competing
    }

    /// A candidate event by id.
    #[inline]
    pub fn event(&self, e: EventId) -> &CandidateEvent {
        &self.events[e.index()]
    }

    /// An interval by id.
    #[inline]
    pub fn interval(&self, t: IntervalId) -> &TimeInterval {
        &self.intervals[t.index()]
    }

    /// Competing events pinned to interval `t` (`C_t` in the paper).
    #[inline]
    pub fn competing_at(&self, t: IntervalId) -> &[CompetingEventId] {
        &self.competing_by_interval[t.index()]
    }

    /// Number of users `|U|`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.interest.num_users()
    }

    /// Number of candidate events `|E|`.
    #[inline]
    pub fn num_events(&self) -> usize {
        self.events.len()
    }

    /// Number of intervals `|T|`.
    #[inline]
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Number of competing events `|C|`.
    #[inline]
    pub fn num_competing(&self) -> usize {
        self.competing.len()
    }

    /// The interest model `µ`.
    #[inline]
    pub fn interest(&self) -> &dyn InterestModel {
        self.interest.as_ref()
    }

    /// The activity model `σ`.
    #[inline]
    pub fn activity(&self) -> &dyn ActivityModel {
        self.activity.as_ref()
    }

    /// Shared handle to the interest model.
    pub fn interest_arc(&self) -> Arc<dyn InterestModel> {
        Arc::clone(&self.interest)
    }

    /// Shared handle to the activity model.
    pub fn activity_arc(&self) -> Arc<dyn ActivityModel> {
        Arc::clone(&self.activity)
    }

    /// Convenience: `µ(u, e)` for a candidate event.
    #[inline]
    pub fn mu(&self, u: UserId, e: EventId) -> f64 {
        self.interest.interest(u, e.into())
    }

    /// Convenience: `σ(u, t)`.
    #[inline]
    pub fn sigma(&self, u: UserId, t: IntervalId) -> f64 {
        self.activity.activity(u, t)
    }

    /// An empty schedule sized for this instance.
    pub fn empty_schedule(&self) -> Schedule {
        Schedule::empty(self.num_events(), self.num_intervals())
    }

    /// Checks whether adding `event → interval` to `schedule` keeps it
    /// feasible and valid (paper §II). `schedule` itself is assumed feasible.
    pub fn check_assignment(
        &self,
        schedule: &Schedule,
        event: EventId,
        interval: IntervalId,
    ) -> Result<(), FeasibilityViolation> {
        if schedule.contains(event) {
            return Err(FeasibilityViolation::EventAlreadyScheduled { event });
        }
        let incoming = self.event(event);
        let mut used = 0.0;
        for &other in schedule.events_at(interval) {
            let existing = self.event(other);
            if existing.location == incoming.location {
                return Err(FeasibilityViolation::LocationConflict {
                    interval,
                    existing: other,
                    incoming: event,
                });
            }
            used += existing.required_resources;
        }
        let budget = self.budget();
        if used + incoming.required_resources > budget {
            return Err(FeasibilityViolation::ResourcesExceeded {
                interval,
                used,
                requested: incoming.required_resources,
                budget,
            });
        }
        Ok(())
    }

    /// Checks a whole schedule for feasibility (both constraints at every
    /// interval). Used by tests and by loaders of external schedules.
    pub fn check_schedule(&self, schedule: &Schedule) -> Result<(), FeasibilityViolation> {
        for t in 0..self.num_intervals() {
            let t = IntervalId::new(t as u32);
            let events = schedule.events_at(t);
            let mut used = 0.0;
            for (i, &e) in events.iter().enumerate() {
                let ev = self.event(e);
                used += ev.required_resources;
                for &other in &events[..i] {
                    if self.event(other).location == ev.location {
                        return Err(FeasibilityViolation::LocationConflict {
                            interval: t,
                            existing: other,
                            incoming: e,
                        });
                    }
                }
            }
            if used > self.budget() {
                return Err(FeasibilityViolation::ResourcesExceeded {
                    interval: t,
                    used,
                    requested: 0.0,
                    budget: self.budget(),
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`SesInstance`]; validates everything listed in
/// [`ValidationError`].
#[derive(Default)]
pub struct InstanceBuilder {
    organizer: Option<Organizer>,
    intervals: Vec<TimeInterval>,
    events: Vec<CandidateEvent>,
    competing: Vec<CompetingEvent>,
    interest: Option<Arc<dyn InterestModel>>,
    activity: Option<Arc<dyn ActivityModel>>,
}

impl InstanceBuilder {
    /// Sets the organizer (budget `θ`).
    pub fn organizer(mut self, organizer: Organizer) -> Self {
        self.organizer = Some(organizer);
        self
    }

    /// Sets the candidate intervals `T`.
    pub fn intervals(mut self, intervals: Vec<TimeInterval>) -> Self {
        self.intervals = intervals;
        self
    }

    /// Sets the candidate events `E`.
    pub fn events(mut self, events: Vec<CandidateEvent>) -> Self {
        self.events = events;
        self
    }

    /// Sets the competing events `C`.
    pub fn competing(mut self, competing: Vec<CompetingEvent>) -> Self {
        self.competing = competing;
        self
    }

    /// Sets the interest model `µ`.
    pub fn interest(mut self, interest: impl InterestModel + 'static) -> Self {
        self.interest = Some(Arc::new(interest));
        self
    }

    /// Sets the interest model from a shared handle.
    pub fn interest_arc(mut self, interest: Arc<dyn InterestModel>) -> Self {
        self.interest = Some(interest);
        self
    }

    /// Sets the activity model `σ`.
    pub fn activity(mut self, activity: impl ActivityModel + 'static) -> Self {
        self.activity = Some(Arc::new(activity));
        self
    }

    /// Sets the activity model from a shared handle.
    pub fn activity_arc(mut self, activity: Arc<dyn ActivityModel>) -> Self {
        self.activity = Some(activity);
        self
    }

    /// Validates and builds the instance behind a shared handle — the form
    /// every engine, session and service consumes. Equivalent to
    /// `build().map(Arc::new)`.
    pub fn build_shared(self) -> Result<Arc<SesInstance>, ValidationError> {
        self.build().map(Arc::new)
    }

    /// Validates and builds the instance.
    pub fn build(self) -> Result<SesInstance, ValidationError> {
        let organizer = self
            .organizer
            .ok_or(ValidationError::Missing { what: "organizer" })?;
        let interest = self.interest.ok_or(ValidationError::Missing {
            what: "interest model",
        })?;
        let activity = self.activity.ok_or(ValidationError::Missing {
            what: "activity model",
        })?;

        // NaN must fail this check too, hence the negated comparison.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(organizer.available_resources > 0.0) {
            return Err(ValidationError::InvalidBudget {
                value: organizer.available_resources,
            });
        }

        for (i, t) in self.intervals.iter().enumerate() {
            if t.id.index() != i {
                return Err(ValidationError::NonDenseIds {
                    what: "intervals",
                    position: i,
                });
            }
        }
        for (i, e) in self.events.iter().enumerate() {
            if e.id.index() != i {
                return Err(ValidationError::NonDenseIds {
                    what: "events",
                    position: i,
                });
            }
            if !e.required_resources.is_finite() || e.required_resources < 0.0 {
                return Err(ValidationError::InvalidRequiredResources {
                    event: e.id,
                    value: e.required_resources,
                });
            }
        }
        for (i, c) in self.competing.iter().enumerate() {
            if c.id.index() != i {
                return Err(ValidationError::NonDenseIds {
                    what: "competing",
                    position: i,
                });
            }
            if c.interval.index() >= self.intervals.len() {
                return Err(ValidationError::CompetingIntervalOutOfBounds {
                    competing: c.id,
                    interval: c.interval,
                });
            }
        }

        // Disjointness: sort by start, check neighbours. O(|T| log |T|).
        let mut order: Vec<usize> = (0..self.intervals.len()).collect();
        order.sort_unstable_by_key(|&i| self.intervals[i].start);
        for w in order.windows(2) {
            let (a, b) = (&self.intervals[w[0]], &self.intervals[w[1]]);
            if a.overlaps(b) {
                return Err(ValidationError::OverlappingIntervals { a: a.id, b: b.id });
            }
        }

        let expected_interest = (
            interest.num_users(),
            self.events.len(),
            self.competing.len(),
        );
        let actual_interest = (
            interest.num_users(),
            interest.num_candidates(),
            interest.num_competing(),
        );
        if expected_interest != actual_interest {
            return Err(ValidationError::InterestShapeMismatch {
                expected: expected_interest,
                actual: actual_interest,
            });
        }

        let expected_activity = (interest.num_users(), self.intervals.len());
        let actual_activity = (activity.num_users(), activity.num_intervals());
        if expected_activity != actual_activity {
            return Err(ValidationError::ActivityShapeMismatch {
                expected: expected_activity,
                actual: actual_activity,
            });
        }

        let mut competing_by_interval = vec![Vec::new(); self.intervals.len()];
        for c in &self.competing {
            competing_by_interval[c.interval.index()].push(c.id);
        }

        Ok(SesInstance {
            organizer,
            intervals: self.intervals,
            events: self.events,
            competing: self.competing,
            competing_by_interval,
            interest,
            activity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ConstantActivity;
    use crate::ids::LocationId;
    use crate::interest::InterestBuilder;
    use crate::model::uniform_grid;

    /// 2 users, 3 events (two sharing location 0), 2 intervals, 1 competing
    /// event at t0, θ = 10.
    fn tiny() -> SesInstance {
        let mut interest = InterestBuilder::new(2, 3, 1);
        interest.set(UserId::new(0), EventId::new(0), 0.8).unwrap();
        interest.set(UserId::new(0), EventId::new(1), 0.4).unwrap();
        interest.set(UserId::new(1), EventId::new(2), 0.6).unwrap();
        interest
            .set(UserId::new(0), CompetingEventId::new(0), 0.5)
            .unwrap();
        SesInstance::builder()
            .organizer(Organizer::new(10.0))
            .intervals(uniform_grid(2, 100))
            .events(vec![
                CandidateEvent::new(EventId::new(0), LocationId::new(0), 4.0),
                CandidateEvent::new(EventId::new(1), LocationId::new(0), 4.0),
                CandidateEvent::new(EventId::new(2), LocationId::new(1), 8.0),
            ])
            .competing(vec![CompetingEvent::new(
                CompetingEventId::new(0),
                IntervalId::new(0),
            )])
            .interest(interest.build_sparse().unwrap())
            .activity(ConstantActivity::new(2, 2, 1.0).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_exposes_shape() {
        let inst = tiny();
        assert_eq!(inst.num_users(), 2);
        assert_eq!(inst.num_events(), 3);
        assert_eq!(inst.num_intervals(), 2);
        assert_eq!(inst.num_competing(), 1);
        assert_eq!(
            inst.competing_at(IntervalId::new(0)),
            &[CompetingEventId::new(0)]
        );
        assert!(inst.competing_at(IntervalId::new(1)).is_empty());
        assert_eq!(inst.mu(UserId::new(0), EventId::new(0)), 0.8);
        assert_eq!(inst.sigma(UserId::new(1), IntervalId::new(1)), 1.0);
        let dbg = format!("{inst:?}");
        assert!(dbg.contains("num_events: 3"));
    }

    #[test]
    fn check_assignment_location_conflict() {
        let inst = tiny();
        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(0)).unwrap();
        // e1 shares location 0 with e0.
        let err = inst
            .check_assignment(&s, EventId::new(1), IntervalId::new(0))
            .unwrap_err();
        assert!(matches!(err, FeasibilityViolation::LocationConflict { .. }));
        // Different interval is fine.
        inst.check_assignment(&s, EventId::new(1), IntervalId::new(1))
            .unwrap();
    }

    #[test]
    fn check_assignment_resources() {
        let inst = tiny();
        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(0)).unwrap(); // uses 4
                                                                // e2 requires 8; 4 + 8 > 10.
        let err = inst
            .check_assignment(&s, EventId::new(2), IntervalId::new(0))
            .unwrap_err();
        assert!(matches!(
            err,
            FeasibilityViolation::ResourcesExceeded { .. }
        ));
    }

    #[test]
    fn check_assignment_already_scheduled() {
        let inst = tiny();
        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(0)).unwrap();
        let err = inst
            .check_assignment(&s, EventId::new(0), IntervalId::new(1))
            .unwrap_err();
        assert!(matches!(
            err,
            FeasibilityViolation::EventAlreadyScheduled { .. }
        ));
    }

    #[test]
    fn check_schedule_detects_violations() {
        let inst = tiny();
        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(0)).unwrap();
        s.assign(EventId::new(1), IntervalId::new(0)).unwrap(); // same location
        assert!(matches!(
            inst.check_schedule(&s).unwrap_err(),
            FeasibilityViolation::LocationConflict { .. }
        ));

        let mut s = inst.empty_schedule();
        s.assign(EventId::new(0), IntervalId::new(1)).unwrap();
        s.assign(EventId::new(2), IntervalId::new(0)).unwrap();
        inst.check_schedule(&s).unwrap();
    }

    #[test]
    fn builder_rejects_overlapping_intervals() {
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .intervals(vec![
                TimeInterval::new(IntervalId::new(0), 0, 10),
                TimeInterval::new(IntervalId::new(1), 5, 15),
            ])
            .interest(InterestBuilder::new(0, 0, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(0, 2, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::OverlappingIntervals { .. }));
    }

    #[test]
    fn builder_rejects_non_dense_ids() {
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .intervals(vec![TimeInterval::new(IntervalId::new(3), 0, 10)])
            .interest(InterestBuilder::new(0, 0, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(0, 1, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::NonDenseIds { .. }));
    }

    #[test]
    fn builder_rejects_bad_budget_and_missing_parts() {
        let err = SesInstance::builder()
            .organizer(Organizer::new(0.0))
            .interest(InterestBuilder::new(0, 0, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(0, 0, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::InvalidBudget { .. }));

        let err = SesInstance::builder().build().unwrap_err();
        assert!(matches!(
            err,
            ValidationError::Missing { what: "organizer" }
        ));
    }

    #[test]
    fn builder_rejects_shape_mismatches() {
        // Interest has 1 candidate but instance has 0 events.
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .interest(InterestBuilder::new(1, 1, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(1, 0, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::InterestShapeMismatch { .. }));

        // Activity has wrong number of intervals.
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .intervals(uniform_grid(2, 10))
            .interest(InterestBuilder::new(1, 0, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(1, 5, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidationError::ActivityShapeMismatch { .. }));
    }

    #[test]
    fn builder_rejects_bad_competing_interval() {
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .intervals(uniform_grid(1, 10))
            .competing(vec![CompetingEvent::new(
                CompetingEventId::new(0),
                IntervalId::new(9),
            )])
            .interest(InterestBuilder::new(0, 0, 1).build_sparse().unwrap())
            .activity(ConstantActivity::new(0, 1, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidationError::CompetingIntervalOutOfBounds { .. }
        ));
    }

    #[test]
    fn builder_rejects_negative_resources() {
        let err = SesInstance::builder()
            .organizer(Organizer::new(1.0))
            .intervals(uniform_grid(1, 10))
            .events(vec![CandidateEvent::new(
                EventId::new(0),
                LocationId::new(0),
                -1.0,
            )])
            .interest(InterestBuilder::new(0, 1, 0).build_sparse().unwrap())
            .activity(ConstantActivity::new(0, 1, 0.5).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidationError::InvalidRequiredResources { .. }
        ));
    }
}
