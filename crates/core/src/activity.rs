//! The social-activity probability `σ : U × T → [0,1]` (paper §II, "Users").
//!
//! `σ(u,t)` is the probability that user `u` engages in *some* social
//! activity during interval `t`, estimated from past behaviour (e.g.
//! check-ins). Backends:
//!
//! * [`DenseActivity`] — explicit `|U| × |T|` matrix;
//! * [`SlotActivity`] — per-user weekly-slot profile shared by all intervals
//!   that fall into the same slot (what check-in estimation produces);
//! * [`ConstantActivity`] — a single value, for analytical tests;
//! * [`HashedActivity`] — procedural `U[0,1)` values derived from a seed, so
//!   paper-scale populations need no `|U| × |T|` storage (the paper draws
//!   σ from a uniform distribution);
//! * [`MaskedActivity`] — procedural *sparse* σ: each user is active only in
//!   a small window of intervals and `σ = 0` everywhere else (the
//!   companion attendance-maximization regime: many users, few active per
//!   interval). This is the model that makes the engine's blocked columns
//!   (DESIGN.md §11) pay at million-user scale.

use crate::ids::{IntervalId, UserId};
use crate::util::fxhash::FxHasher;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;

/// Read access to the activity probability.
pub trait ActivityModel: Send + Sync {
    /// Number of users `|U|`.
    fn num_users(&self) -> usize;
    /// Number of intervals `|T|`.
    fn num_intervals(&self) -> usize;
    /// The probability `σ(u, t) ∈ [0,1]`.
    fn activity(&self, user: UserId, interval: IntervalId) -> f64;

    /// Calls `visit(t, σ(u,t))` for every interval with `σ(u,t) > 0`, in
    /// ascending interval order, each interval at most once, with values
    /// bit-identical to [`Self::activity`]. The engine builds its blocked
    /// per-interval columns through this enumeration (and debug-asserts the
    /// contract), so a model that violates it corrupts the slot index.
    ///
    /// The default probes every interval in `O(|T|)` virtual calls; sparse
    /// models (e.g. [`MaskedActivity`]) override it in `O(active)` so
    /// million-user engines build without ever materializing a dense
    /// `|U| × |T|` pass.
    fn for_each_active(&self, user: UserId, visit: &mut dyn FnMut(IntervalId, f64)) {
        for t in 0..self.num_intervals() {
            let interval = IntervalId::new(t as u32);
            let sigma = self.activity(user, interval);
            if sigma > 0.0 {
                visit(interval, sigma);
            }
        }
    }
}

/// Errors raised while building an activity model.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivityError {
    /// A probability outside `[0,1]` (or NaN).
    ValueOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// Matrix shape does not match the declared universe.
    ShapeMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Supplied number of entries.
        actual: usize,
    },
}

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityError::ValueOutOfRange { value } => {
                write!(f, "activity probability {value} is outside [0,1]")
            }
            ActivityError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "activity matrix has {actual} entries, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ActivityError {}

fn check_prob(value: f64) -> Result<(), ActivityError> {
    if (0.0..=1.0).contains(&value) && !value.is_nan() {
        Ok(())
    } else {
        Err(ActivityError::ValueOutOfRange { value })
    }
}

/// Explicit row-major `|U| × |T|` matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseActivity {
    num_users: usize,
    num_intervals: usize,
    /// `values[u * num_intervals + t]`
    values: Vec<f64>,
}

impl DenseActivity {
    /// Builds from a flat row-major vector (`values[u * num_intervals + t]`).
    pub fn from_flat(
        num_users: usize,
        num_intervals: usize,
        values: Vec<f64>,
    ) -> Result<Self, ActivityError> {
        if values.len() != num_users * num_intervals {
            return Err(ActivityError::ShapeMismatch {
                expected: num_users * num_intervals,
                actual: values.len(),
            });
        }
        for &v in &values {
            check_prob(v)?;
        }
        Ok(Self {
            num_users,
            num_intervals,
            values,
        })
    }

    /// Builds from per-user rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, ActivityError> {
        let num_users = rows.len();
        let num_intervals = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(num_users * num_intervals);
        for row in &rows {
            if row.len() != num_intervals {
                return Err(ActivityError::ShapeMismatch {
                    expected: num_intervals,
                    actual: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        Self::from_flat(num_users, num_intervals, values)
    }
}

impl ActivityModel for DenseActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        self.values[user.index() * self.num_intervals + interval.index()]
    }
}

/// Per-user profile over a small number of recurring slots (e.g. 21 slots =
/// 7 days × {morning, afternoon, evening}); each interval maps to one slot.
///
/// This is the shape produced by estimating σ from check-in histories: a
/// user's Friday-evening propensity applies to *every* Friday-evening
/// interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotActivity {
    num_users: usize,
    num_slots: usize,
    /// `profile[u * num_slots + s]`
    profile: Vec<f64>,
    /// `slot_of[t]` — which slot interval `t` belongs to.
    slot_of: Vec<u16>,
}

impl SlotActivity {
    /// Builds from per-user slot profiles and the interval→slot mapping.
    pub fn new(
        num_slots: usize,
        profile: Vec<f64>,
        slot_of: Vec<u16>,
    ) -> Result<Self, ActivityError> {
        if num_slots == 0 || !profile.len().is_multiple_of(num_slots) {
            return Err(ActivityError::ShapeMismatch {
                expected: num_slots,
                actual: profile.len(),
            });
        }
        for &v in &profile {
            check_prob(v)?;
        }
        for &s in &slot_of {
            if s as usize >= num_slots {
                return Err(ActivityError::ShapeMismatch {
                    expected: num_slots,
                    actual: s as usize,
                });
            }
        }
        Ok(Self {
            num_users: profile.len() / num_slots,
            num_slots,
            profile,
            slot_of,
        })
    }

    /// Number of recurring slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }
}

impl ActivityModel for SlotActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.slot_of.len()
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        let slot = self.slot_of[interval.index()] as usize;
        self.profile[user.index() * self.num_slots + slot]
    }
}

/// A single probability shared by all users and intervals. Useful for
/// analytical tests (Theorem 1 uses "the same σ for each user and interval").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstantActivity {
    num_users: usize,
    num_intervals: usize,
    value: f64,
}

impl ConstantActivity {
    /// Builds a constant-σ model.
    pub fn new(num_users: usize, num_intervals: usize, value: f64) -> Result<Self, ActivityError> {
        check_prob(value)?;
        Ok(Self {
            num_users,
            num_intervals,
            value,
        })
    }
}

impl ActivityModel for ConstantActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, _user: UserId, _interval: IntervalId) -> f64 {
        self.value
    }
}

/// Procedural uniform σ: `σ(u,t)` is a deterministic hash of
/// `(seed, u, t)` mapped to `[lo, hi) ⊆ [0,1]`.
///
/// This reproduces the paper's "σ defined using a Uniform distribution" at
/// any population scale with zero storage, and is reproducible by seed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HashedActivity {
    num_users: usize,
    num_intervals: usize,
    seed: u64,
    lo: f64,
    hi: f64,
}

impl HashedActivity {
    /// Uniform over `[0,1)`.
    pub fn standard(num_users: usize, num_intervals: usize, seed: u64) -> Self {
        Self::with_range(num_users, num_intervals, seed, 0.0, 1.0).expect("[0,1) is valid")
    }

    /// Uniform over `[lo, hi) ⊆ [0,1]`.
    pub fn with_range(
        num_users: usize,
        num_intervals: usize,
        seed: u64,
        lo: f64,
        hi: f64,
    ) -> Result<Self, ActivityError> {
        check_prob(lo)?;
        check_prob(hi)?;
        if lo > hi {
            return Err(ActivityError::ValueOutOfRange { value: lo });
        }
        Ok(Self {
            num_users,
            num_intervals,
            seed,
            lo,
            hi,
        })
    }
}

impl ActivityModel for HashedActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        let mut h = FxHasher::default();
        h.write_u64(self.seed);
        h.write_u32(user.raw());
        h.write_u32(interval.raw());
        // Map the top 53 bits to [0,1).
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        self.lo + unit * (self.hi - self.lo)
    }
}

/// Procedural *sparse* σ: each user is active only inside a contiguous
/// (possibly wrapping) window of `active_per_user` intervals, with hashed
/// values in `[lo, hi) ⊆ (0,1]` there and exactly `0.0` everywhere else.
///
/// The window start is a deterministic hash of `(seed, u)`, so a population
/// of millions of users spreads roughly evenly over the horizon with zero
/// storage. With `active_per_user ≪ |T|`, per-interval engine columns hold
/// `≈ |U| · active_per_user / |T|` slots instead of `|U|`, which is the
/// regime the blocked layout (DESIGN.md §11) is built for.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MaskedActivity {
    num_users: usize,
    num_intervals: usize,
    active_per_user: usize,
    seed: u64,
    lo: f64,
    hi: f64,
}

impl MaskedActivity {
    /// Hashed values over `[0.1, 1.0)` inside each user's window.
    pub fn sparse(
        num_users: usize,
        num_intervals: usize,
        active_per_user: usize,
        seed: u64,
    ) -> Self {
        Self::with_range(num_users, num_intervals, active_per_user, seed, 0.1, 1.0)
            .expect("[0.1,1.0) is valid")
    }

    /// Hashed values over `[lo, hi)` inside each user's window; `lo` must be
    /// strictly positive so every in-window slot has `σ > 0` (the engine's
    /// column-membership predicate).
    pub fn with_range(
        num_users: usize,
        num_intervals: usize,
        active_per_user: usize,
        seed: u64,
        lo: f64,
        hi: f64,
    ) -> Result<Self, ActivityError> {
        check_prob(lo)?;
        check_prob(hi)?;
        if lo > hi || lo <= 0.0 {
            return Err(ActivityError::ValueOutOfRange { value: lo });
        }
        Ok(Self {
            num_users,
            num_intervals,
            active_per_user,
            seed,
            lo,
            hi,
        })
    }

    /// Window width actually in effect (clamped to the horizon).
    fn window(&self) -> usize {
        self.active_per_user.min(self.num_intervals)
    }

    /// First interval of `user`'s active window.
    fn window_start(&self, user: UserId) -> usize {
        let mut h = FxHasher::default();
        h.write_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        h.write_u32(user.raw());
        (h.finish() % self.num_intervals.max(1) as u64) as usize
    }

    fn value(&self, user: UserId, interval: IntervalId) -> f64 {
        let mut h = FxHasher::default();
        h.write_u64(self.seed);
        h.write_u32(user.raw());
        h.write_u32(interval.raw());
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        self.lo + unit * (self.hi - self.lo)
    }
}

impl ActivityModel for MaskedActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        let nt = self.num_intervals;
        let a = self.window();
        if a == 0 || nt == 0 {
            return 0.0;
        }
        let start = self.window_start(user);
        let offset = (interval.index() + nt - start) % nt;
        if offset < a {
            self.value(user, interval)
        } else {
            0.0
        }
    }

    fn for_each_active(&self, user: UserId, visit: &mut dyn FnMut(IntervalId, f64)) {
        let nt = self.num_intervals;
        let a = self.window();
        if a == 0 || nt == 0 {
            return;
        }
        let start = self.window_start(user);
        let end = start + a;
        // Ascending interval order: the wrapped tail `[0, end-nt)` precedes
        // the head `[start, nt)`.
        if end > nt {
            for t in 0..end - nt {
                let interval = IntervalId::new(t as u32);
                visit(interval, self.value(user, interval));
            }
            for t in start..nt {
                let interval = IntervalId::new(t as u32);
                visit(interval, self.value(user, interval));
            }
        } else {
            for t in start..end {
                let interval = IntervalId::new(t as u32);
                visit(interval, self.value(user, interval));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_from_rows_and_lookup() {
        let a = DenseActivity::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(a.num_users(), 2);
        assert_eq!(a.num_intervals(), 2);
        assert_eq!(a.activity(UserId::new(1), IntervalId::new(0)), 0.3);
    }

    #[test]
    fn dense_rejects_bad_shape_and_values() {
        assert!(matches!(
            DenseActivity::from_flat(2, 2, vec![0.0; 3]).unwrap_err(),
            ActivityError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            DenseActivity::from_rows(vec![vec![0.5], vec![1.5]]).unwrap_err(),
            ActivityError::ValueOutOfRange { .. }
        ));
        assert!(matches!(
            DenseActivity::from_rows(vec![vec![0.5, 0.1], vec![0.5]]).unwrap_err(),
            ActivityError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn slot_activity_maps_intervals_to_slots() {
        // 2 users × 3 slots; 4 intervals alternating slots 0,1,2,0.
        let a = SlotActivity::new(3, vec![0.1, 0.2, 0.3, 0.9, 0.8, 0.7], vec![0, 1, 2, 0]).unwrap();
        assert_eq!(a.num_users(), 2);
        assert_eq!(a.num_intervals(), 4);
        assert_eq!(a.activity(UserId::new(0), IntervalId::new(3)), 0.1);
        assert_eq!(a.activity(UserId::new(1), IntervalId::new(2)), 0.7);
    }

    #[test]
    fn slot_activity_rejects_bad_slot_index() {
        let err = SlotActivity::new(2, vec![0.1, 0.2], vec![0, 5]).unwrap_err();
        assert!(matches!(err, ActivityError::ShapeMismatch { .. }));
    }

    #[test]
    fn constant_is_constant() {
        let a = ConstantActivity::new(10, 10, 0.6).unwrap();
        assert_eq!(a.activity(UserId::new(3), IntervalId::new(9)), 0.6);
        assert!(ConstantActivity::new(1, 1, -0.1).is_err());
    }

    #[test]
    fn hashed_is_deterministic_and_in_range() {
        let a = HashedActivity::standard(100, 50, 42);
        let v1 = a.activity(UserId::new(7), IntervalId::new(13));
        let v2 = a.activity(UserId::new(7), IntervalId::new(13));
        assert_eq!(v1, v2);
        for u in 0..100u32 {
            for t in 0..50u32 {
                let v = a.activity(UserId::new(u), IntervalId::new(t));
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn hashed_seed_changes_values() {
        let a = HashedActivity::standard(10, 10, 1);
        let b = HashedActivity::standard(10, 10, 2);
        let differs = (0..10u32).any(|u| {
            a.activity(UserId::new(u), IntervalId::new(0))
                != b.activity(UserId::new(u), IntervalId::new(0))
        });
        assert!(differs);
    }

    #[test]
    fn hashed_mean_is_near_half() {
        let a = HashedActivity::standard(200, 200, 7);
        let mut sum = 0.0;
        for u in 0..200u32 {
            for t in 0..200u32 {
                sum += a.activity(UserId::new(u), IntervalId::new(t));
            }
        }
        let mean = sum / (200.0 * 200.0);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn hashed_range_is_respected() {
        let a = HashedActivity::with_range(50, 50, 3, 0.2, 0.4).unwrap();
        for u in 0..50u32 {
            let v = a.activity(UserId::new(u), IntervalId::new(u));
            assert!((0.2..0.4).contains(&v));
        }
        assert!(HashedActivity::with_range(1, 1, 0, 0.9, 0.1).is_err());
    }

    #[test]
    fn masked_window_has_exactly_active_per_user_slots() {
        let a = MaskedActivity::sparse(40, 24, 5, 11);
        for u in 0..40u32 {
            let user = UserId::new(u);
            let active = (0..24u32)
                .filter(|&t| a.activity(user, IntervalId::new(t)) > 0.0)
                .count();
            assert_eq!(active, 5, "user {u}");
        }
    }

    #[test]
    fn masked_for_each_active_matches_dense_probe_bitwise() {
        // Include widths that wrap (larger than nt - start for some users)
        // and the degenerate full-horizon width.
        for width in [1usize, 3, 7, 24, 40] {
            let a = MaskedActivity::sparse(60, 24, width, 99);
            for u in 0..60u32 {
                let user = UserId::new(u);
                let mut enumerated = Vec::new();
                a.for_each_active(user, &mut |t, sigma| enumerated.push((t, sigma)));
                let probed: Vec<(IntervalId, f64)> = (0..24u32)
                    .map(IntervalId::new)
                    .filter_map(|t| {
                        let sigma = a.activity(user, t);
                        (sigma > 0.0).then_some((t, sigma))
                    })
                    .collect();
                assert_eq!(enumerated.len(), probed.len());
                for (e, p) in enumerated.iter().zip(&probed) {
                    assert_eq!(e.0, p.0, "interval order must be ascending");
                    assert_eq!(e.1.to_bits(), p.1.to_bits(), "values must be bit-equal");
                }
            }
        }
    }

    #[test]
    fn masked_values_stay_in_range_and_reject_zero_lo() {
        let a = MaskedActivity::sparse(30, 12, 4, 5);
        for u in 0..30u32 {
            for t in 0..12u32 {
                let v = a.activity(UserId::new(u), IntervalId::new(t));
                assert!(v == 0.0 || (0.1..1.0).contains(&v));
            }
        }
        assert!(MaskedActivity::with_range(1, 1, 1, 0, 0.0, 1.0).is_err());
    }

    #[test]
    fn masked_degenerate_shapes_are_inert() {
        let empty = MaskedActivity::sparse(4, 0, 3, 1);
        let mut hits = 0;
        empty.for_each_active(UserId::new(0), &mut |_, _| hits += 1);
        assert_eq!(hits, 0);
        let zero_width = MaskedActivity::sparse(4, 8, 0, 1);
        assert_eq!(zero_width.activity(UserId::new(1), IntervalId::new(3)), 0.0);
        zero_width.for_each_active(UserId::new(1), &mut |_, _| hits += 1);
        assert_eq!(hits, 0);
    }
}
