//! The social-activity probability `σ : U × T → [0,1]` (paper §II, "Users").
//!
//! `σ(u,t)` is the probability that user `u` engages in *some* social
//! activity during interval `t`, estimated from past behaviour (e.g.
//! check-ins). Backends:
//!
//! * [`DenseActivity`] — explicit `|U| × |T|` matrix;
//! * [`SlotActivity`] — per-user weekly-slot profile shared by all intervals
//!   that fall into the same slot (what check-in estimation produces);
//! * [`ConstantActivity`] — a single value, for analytical tests;
//! * [`HashedActivity`] — procedural `U[0,1)` values derived from a seed, so
//!   paper-scale populations need no `|U| × |T|` storage (the paper draws
//!   σ from a uniform distribution).

use crate::ids::{IntervalId, UserId};
use crate::util::fxhash::FxHasher;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;

/// Read access to the activity probability.
pub trait ActivityModel: Send + Sync {
    /// Number of users `|U|`.
    fn num_users(&self) -> usize;
    /// Number of intervals `|T|`.
    fn num_intervals(&self) -> usize;
    /// The probability `σ(u, t) ∈ [0,1]`.
    fn activity(&self, user: UserId, interval: IntervalId) -> f64;
}

/// Errors raised while building an activity model.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivityError {
    /// A probability outside `[0,1]` (or NaN).
    ValueOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// Matrix shape does not match the declared universe.
    ShapeMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Supplied number of entries.
        actual: usize,
    },
}

impl fmt::Display for ActivityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivityError::ValueOutOfRange { value } => {
                write!(f, "activity probability {value} is outside [0,1]")
            }
            ActivityError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "activity matrix has {actual} entries, expected {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ActivityError {}

fn check_prob(value: f64) -> Result<(), ActivityError> {
    if (0.0..=1.0).contains(&value) && !value.is_nan() {
        Ok(())
    } else {
        Err(ActivityError::ValueOutOfRange { value })
    }
}

/// Explicit row-major `|U| × |T|` matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseActivity {
    num_users: usize,
    num_intervals: usize,
    /// `values[u * num_intervals + t]`
    values: Vec<f64>,
}

impl DenseActivity {
    /// Builds from a flat row-major vector (`values[u * num_intervals + t]`).
    pub fn from_flat(
        num_users: usize,
        num_intervals: usize,
        values: Vec<f64>,
    ) -> Result<Self, ActivityError> {
        if values.len() != num_users * num_intervals {
            return Err(ActivityError::ShapeMismatch {
                expected: num_users * num_intervals,
                actual: values.len(),
            });
        }
        for &v in &values {
            check_prob(v)?;
        }
        Ok(Self {
            num_users,
            num_intervals,
            values,
        })
    }

    /// Builds from per-user rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, ActivityError> {
        let num_users = rows.len();
        let num_intervals = rows.first().map_or(0, Vec::len);
        let mut values = Vec::with_capacity(num_users * num_intervals);
        for row in &rows {
            if row.len() != num_intervals {
                return Err(ActivityError::ShapeMismatch {
                    expected: num_intervals,
                    actual: row.len(),
                });
            }
            values.extend_from_slice(row);
        }
        Self::from_flat(num_users, num_intervals, values)
    }
}

impl ActivityModel for DenseActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        self.values[user.index() * self.num_intervals + interval.index()]
    }
}

/// Per-user profile over a small number of recurring slots (e.g. 21 slots =
/// 7 days × {morning, afternoon, evening}); each interval maps to one slot.
///
/// This is the shape produced by estimating σ from check-in histories: a
/// user's Friday-evening propensity applies to *every* Friday-evening
/// interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotActivity {
    num_users: usize,
    num_slots: usize,
    /// `profile[u * num_slots + s]`
    profile: Vec<f64>,
    /// `slot_of[t]` — which slot interval `t` belongs to.
    slot_of: Vec<u16>,
}

impl SlotActivity {
    /// Builds from per-user slot profiles and the interval→slot mapping.
    pub fn new(
        num_slots: usize,
        profile: Vec<f64>,
        slot_of: Vec<u16>,
    ) -> Result<Self, ActivityError> {
        if num_slots == 0 || !profile.len().is_multiple_of(num_slots) {
            return Err(ActivityError::ShapeMismatch {
                expected: num_slots,
                actual: profile.len(),
            });
        }
        for &v in &profile {
            check_prob(v)?;
        }
        for &s in &slot_of {
            if s as usize >= num_slots {
                return Err(ActivityError::ShapeMismatch {
                    expected: num_slots,
                    actual: s as usize,
                });
            }
        }
        Ok(Self {
            num_users: profile.len() / num_slots,
            num_slots,
            profile,
            slot_of,
        })
    }

    /// Number of recurring slots.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }
}

impl ActivityModel for SlotActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.slot_of.len()
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        let slot = self.slot_of[interval.index()] as usize;
        self.profile[user.index() * self.num_slots + slot]
    }
}

/// A single probability shared by all users and intervals. Useful for
/// analytical tests (Theorem 1 uses "the same σ for each user and interval").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstantActivity {
    num_users: usize,
    num_intervals: usize,
    value: f64,
}

impl ConstantActivity {
    /// Builds a constant-σ model.
    pub fn new(num_users: usize, num_intervals: usize, value: f64) -> Result<Self, ActivityError> {
        check_prob(value)?;
        Ok(Self {
            num_users,
            num_intervals,
            value,
        })
    }
}

impl ActivityModel for ConstantActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, _user: UserId, _interval: IntervalId) -> f64 {
        self.value
    }
}

/// Procedural uniform σ: `σ(u,t)` is a deterministic hash of
/// `(seed, u, t)` mapped to `[lo, hi) ⊆ [0,1]`.
///
/// This reproduces the paper's "σ defined using a Uniform distribution" at
/// any population scale with zero storage, and is reproducible by seed.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HashedActivity {
    num_users: usize,
    num_intervals: usize,
    seed: u64,
    lo: f64,
    hi: f64,
}

impl HashedActivity {
    /// Uniform over `[0,1)`.
    pub fn standard(num_users: usize, num_intervals: usize, seed: u64) -> Self {
        Self::with_range(num_users, num_intervals, seed, 0.0, 1.0).expect("[0,1) is valid")
    }

    /// Uniform over `[lo, hi) ⊆ [0,1]`.
    pub fn with_range(
        num_users: usize,
        num_intervals: usize,
        seed: u64,
        lo: f64,
        hi: f64,
    ) -> Result<Self, ActivityError> {
        check_prob(lo)?;
        check_prob(hi)?;
        if lo > hi {
            return Err(ActivityError::ValueOutOfRange { value: lo });
        }
        Ok(Self {
            num_users,
            num_intervals,
            seed,
            lo,
            hi,
        })
    }
}

impl ActivityModel for HashedActivity {
    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_intervals(&self) -> usize {
        self.num_intervals
    }

    #[inline]
    fn activity(&self, user: UserId, interval: IntervalId) -> f64 {
        let mut h = FxHasher::default();
        h.write_u64(self.seed);
        h.write_u32(user.raw());
        h.write_u32(interval.raw());
        // Map the top 53 bits to [0,1).
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        self.lo + unit * (self.hi - self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_from_rows_and_lookup() {
        let a = DenseActivity::from_rows(vec![vec![0.1, 0.2], vec![0.3, 0.4]]).unwrap();
        assert_eq!(a.num_users(), 2);
        assert_eq!(a.num_intervals(), 2);
        assert_eq!(a.activity(UserId::new(1), IntervalId::new(0)), 0.3);
    }

    #[test]
    fn dense_rejects_bad_shape_and_values() {
        assert!(matches!(
            DenseActivity::from_flat(2, 2, vec![0.0; 3]).unwrap_err(),
            ActivityError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            DenseActivity::from_rows(vec![vec![0.5], vec![1.5]]).unwrap_err(),
            ActivityError::ValueOutOfRange { .. }
        ));
        assert!(matches!(
            DenseActivity::from_rows(vec![vec![0.5, 0.1], vec![0.5]]).unwrap_err(),
            ActivityError::ShapeMismatch { .. }
        ));
    }

    #[test]
    fn slot_activity_maps_intervals_to_slots() {
        // 2 users × 3 slots; 4 intervals alternating slots 0,1,2,0.
        let a = SlotActivity::new(3, vec![0.1, 0.2, 0.3, 0.9, 0.8, 0.7], vec![0, 1, 2, 0]).unwrap();
        assert_eq!(a.num_users(), 2);
        assert_eq!(a.num_intervals(), 4);
        assert_eq!(a.activity(UserId::new(0), IntervalId::new(3)), 0.1);
        assert_eq!(a.activity(UserId::new(1), IntervalId::new(2)), 0.7);
    }

    #[test]
    fn slot_activity_rejects_bad_slot_index() {
        let err = SlotActivity::new(2, vec![0.1, 0.2], vec![0, 5]).unwrap_err();
        assert!(matches!(err, ActivityError::ShapeMismatch { .. }));
    }

    #[test]
    fn constant_is_constant() {
        let a = ConstantActivity::new(10, 10, 0.6).unwrap();
        assert_eq!(a.activity(UserId::new(3), IntervalId::new(9)), 0.6);
        assert!(ConstantActivity::new(1, 1, -0.1).is_err());
    }

    #[test]
    fn hashed_is_deterministic_and_in_range() {
        let a = HashedActivity::standard(100, 50, 42);
        let v1 = a.activity(UserId::new(7), IntervalId::new(13));
        let v2 = a.activity(UserId::new(7), IntervalId::new(13));
        assert_eq!(v1, v2);
        for u in 0..100u32 {
            for t in 0..50u32 {
                let v = a.activity(UserId::new(u), IntervalId::new(t));
                assert!((0.0..1.0).contains(&v));
            }
        }
    }

    #[test]
    fn hashed_seed_changes_values() {
        let a = HashedActivity::standard(10, 10, 1);
        let b = HashedActivity::standard(10, 10, 2);
        let differs = (0..10u32).any(|u| {
            a.activity(UserId::new(u), IntervalId::new(0))
                != b.activity(UserId::new(u), IntervalId::new(0))
        });
        assert!(differs);
    }

    #[test]
    fn hashed_mean_is_near_half() {
        let a = HashedActivity::standard(200, 200, 7);
        let mut sum = 0.0;
        for u in 0..200u32 {
            for t in 0..200u32 {
                sum += a.activity(UserId::new(u), IntervalId::new(t));
            }
        }
        let mean = sum / (200.0 * 200.0);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn hashed_range_is_respected() {
        let a = HashedActivity::with_range(50, 50, 3, 0.2, 0.4).unwrap();
        for u in 0..50u32 {
            let v = a.activity(UserId::new(u), IntervalId::new(u));
            assert!((0.2..0.4).contains(&v));
        }
        assert!(HashedActivity::with_range(1, 1, 0, 0.9, 0.1).is_err());
    }
}
