//! The unified `ses-core` error hierarchy.
//!
//! Each subsystem keeps its own precise error type — [`ValidationError`]
//! for instance construction, [`FeasibilityViolation`] for constraint
//! checks, [`ScheduleError`] for schedule bookkeeping, [`SesError`] for
//! solver runs and [`UnknownScheduler`] for registry lookups — and this
//! module folds them all into one [`Error`] enum with `From` conversions,
//! so service layers and applications can use a single `Result<_, Error>`
//! signature (and `?`) across every core entry point.

use crate::algorithms::SesError;
use crate::instance::{FeasibilityViolation, ValidationError};
use crate::registry::UnknownScheduler;
use crate::schedule::ScheduleError;
use crate::store::StoreError;
use std::fmt;

/// Any error the core library can produce, unified for facade layers.
///
/// Every variant wraps the precise subsystem error; [`std::error::Error::source`]
/// exposes the inner value, and `From` impls exist for each, so `?` converts
/// seamlessly:
///
/// ```
/// use ses_core::{Error, EventId, ScheduleError};
///
/// fn demo() -> Result<(), Error> {
///     let inner: Result<(), ScheduleError> =
///         Err(ScheduleError::NotAssigned { event: EventId::new(3) });
///     inner?; // From<ScheduleError> for Error
///     Ok(())
/// }
/// assert!(matches!(demo(), Err(Error::Schedule(_))));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Instance construction failed ([`ValidationError`]).
    Validation(ValidationError),
    /// An assignment or schedule violates feasibility ([`FeasibilityViolation`]).
    Feasibility(FeasibilityViolation),
    /// Schedule bookkeeping rejected an operation ([`ScheduleError`]).
    Schedule(ScheduleError),
    /// A scheduler run failed ([`SesError`]).
    Solver(SesError),
    /// A scheduler spec string did not match any registered algorithm
    /// ([`UnknownScheduler`]).
    UnknownScheduler(UnknownScheduler),
    /// Packing or opening a persisted instance failed ([`StoreError`]).
    Store(StoreError),
    /// A request named an instance that is not in the registry; carries
    /// the registered names so callers can render an actionable message.
    UnknownInstance {
        /// The name the request asked for.
        name: String,
        /// The names that *are* registered, sorted.
        known: Vec<String>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Validation(e) => write!(f, "invalid instance: {e}"),
            Error::Feasibility(e) => write!(f, "infeasible: {e}"),
            Error::Schedule(e) => write!(f, "schedule error: {e}"),
            Error::Solver(e) => write!(f, "solver error: {e}"),
            Error::UnknownScheduler(e) => write!(f, "{e}"),
            Error::Store(e) => write!(f, "instance store error: {e}"),
            Error::UnknownInstance { name, known } => {
                if known.is_empty() {
                    write!(f, "unknown instance '{name}' (no instances are registered)")
                } else {
                    write!(
                        f,
                        "unknown instance '{name}' (registered: {})",
                        known.join(", ")
                    )
                }
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Validation(e) => Some(e),
            Error::Feasibility(e) => Some(e),
            Error::Schedule(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::UnknownScheduler(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::UnknownInstance { .. } => None,
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<ValidationError> for Error {
    fn from(e: ValidationError) -> Self {
        Error::Validation(e)
    }
}

impl From<FeasibilityViolation> for Error {
    fn from(e: FeasibilityViolation) -> Self {
        Error::Feasibility(e)
    }
}

impl From<ScheduleError> for Error {
    fn from(e: ScheduleError) -> Self {
        Error::Schedule(e)
    }
}

impl From<SesError> for Error {
    fn from(e: SesError) -> Self {
        Error::Solver(e)
    }
}

impl From<UnknownScheduler> for Error {
    fn from(e: UnknownScheduler) -> Self {
        Error::UnknownScheduler(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EventId;
    use crate::store::StoreError;
    use std::error::Error as StdError;

    #[test]
    fn conversions_and_sources() {
        let e: Error = ScheduleError::NotAssigned {
            event: EventId::new(7),
        }
        .into();
        assert!(matches!(e, Error::Schedule(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("e7"));

        let e: Error = SesError::InvalidK {
            k: 9,
            num_events: 3,
        }
        .into();
        assert!(matches!(e, Error::Solver(_)));
        assert!(e.to_string().contains("k = 9"));

        let e: Error = FeasibilityViolation::EventAlreadyScheduled {
            event: EventId::new(1),
        }
        .into();
        assert!(e.to_string().contains("infeasible"));

        let e: Error = ValidationError::Missing { what: "organizer" }.into();
        assert!(e.to_string().contains("organizer"));
    }

    #[test]
    fn store_and_unknown_instance_variants() {
        let e: Error = StoreError::UnsupportedVersion {
            found: 7,
            supported: 1,
        }
        .into();
        assert!(matches!(e, Error::Store(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("v7"));

        let e = Error::UnknownInstance {
            name: "tenant-b".to_owned(),
            known: vec!["default".to_owned(), "tenant-a".to_owned()],
        };
        assert!(e.source().is_none());
        let msg = e.to_string();
        assert!(msg.contains("tenant-b"));
        assert!(
            msg.contains("default") && msg.contains("tenant-a"),
            "message must list registered instances: {msg}"
        );
        let e = Error::UnknownInstance {
            name: "x".to_owned(),
            known: vec![],
        };
        assert!(e.to_string().contains("no instances"));
    }

    #[test]
    fn unknown_scheduler_lists_valid_specs() {
        let err = crate::registry::SchedulerSpec::parse("NOPE").unwrap_err();
        let e: Error = err.into();
        let msg = e.to_string();
        assert!(msg.contains("NOPE"));
        assert!(msg.contains("GRD"), "message must list valid specs: {msg}");
    }
}
