//! Small self-contained utilities used across the crate.

pub mod float;
pub mod fxhash;

pub use float::{approx_eq, approx_eq_tol, approx_ge, luce_ratio, total_cmp};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
