//! Floating-point helpers shared by the engine and the algorithms.
//!
//! Utility values are `f64` probabilities/expectations; the algorithms order
//! assignments by score, so we need a total order on scores and tolerant
//! comparison for testing invariants that are exact in real arithmetic but
//! only approximate in floating point.

use std::cmp::Ordering;

/// Default relative tolerance used by [`approx_eq`] when comparing utilities.
pub const REL_TOLERANCE: f64 = 1e-9;

/// Absolute floor below which two values are considered equal regardless of
/// relative error (guards comparisons around zero).
pub const ABS_TOLERANCE: f64 = 1e-12;

/// Total order on `f64` for score ordering.
///
/// NaN never occurs in a correct engine (denominators of Luce ratios are only
/// zero when the numerator is too, and we define `0/0 := 0`), but a total
/// order keeps sorting panic-free even when debugging a broken model.
#[inline]
pub fn total_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

/// Tolerant equality: `|a-b| <= max(ABS_TOLERANCE, REL_TOLERANCE * max(|a|,|b|))`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, REL_TOLERANCE)
}

/// Tolerant equality with a caller-provided relative tolerance.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, rel: f64) -> bool {
    let diff = (a - b).abs();
    diff <= ABS_TOLERANCE || diff <= rel * a.abs().max(b.abs())
}

/// `a >= b` up to tolerance (used for "never worse than" test assertions).
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Luce ratio `num / den` with the paper's convention `0/0 := 0`.
///
/// `den` is a sum of interest values and is therefore `>= num >= 0`; it is
/// zero only when every term (including `num`) is zero.
#[inline]
pub fn luce_ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cmp_orders_plain_values() {
        assert_eq!(total_cmp(1.0, 2.0), Ordering::Less);
        assert_eq!(total_cmp(2.0, 1.0), Ordering::Greater);
        assert_eq!(total_cmp(1.5, 1.5), Ordering::Equal);
    }

    #[test]
    fn total_cmp_handles_nan_without_panicking() {
        // NaN sorts after +inf under IEEE total order; we only need "no panic".
        assert_eq!(total_cmp(f64::NAN, 0.0), Ordering::Greater);
    }

    #[test]
    fn approx_eq_accepts_tiny_relative_error() {
        let a = 0.1 + 0.2;
        assert!(approx_eq(a, 0.3));
        assert!(!approx_eq(1.0, 1.0001));
    }

    #[test]
    fn approx_eq_near_zero_uses_absolute_floor() {
        assert!(approx_eq(0.0, 1e-13));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn approx_ge_boundary() {
        assert!(approx_ge(1.0, 1.0));
        assert!(approx_ge(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.0 - 1e-12, 1.0)); // within tolerance
        assert!(!approx_ge(0.9, 1.0));
    }

    #[test]
    fn luce_ratio_zero_over_zero_is_zero() {
        assert_eq!(luce_ratio(0.0, 0.0), 0.0);
        assert_eq!(luce_ratio(0.5, 1.0), 0.5);
    }
}
