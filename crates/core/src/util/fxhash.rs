//! A minimal FxHash implementation.
//!
//! The engine keys hash maps by small dense integer ids; the standard
//! library's SipHash is needlessly slow for that (HashDoS resistance is
//! irrelevant for internal aggregates). The `rustc-hash` crate is not
//! available in the offline dependency set, so we vendor the ~20-line Fx
//! algorithm (the hash used by rustc itself) here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`]. Drop-in replacement for `HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash set keyed with [`FxHasher`]. Drop-in replacement for `HashSet`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Firefox/rustc "Fx" hasher: a multiply-and-rotate word hasher.
///
/// Very fast for short integer keys; not collision-resistant against
/// adversarial inputs (which do not occur here).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_key() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(12345);
        b.write_u32(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u32(1);
        b.write_u32(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_word_boundaries() {
        // 8-byte aligned writes and the same data via `write` must agree with
        // themselves across calls (sanity of the chunking logic).
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let ha = a.finish();
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(ha, b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, f64> = FxHashMap::default();
        m.insert(3, 0.5);
        *m.entry(3).or_insert(0.0) += 0.25;
        assert_eq!(m[&3], 0.75);

        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn spread_over_buckets_is_reasonable() {
        // Dense small integers should not all collide into few buckets.
        let mut hashes: Vec<u64> = (0u32..1024)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u32(k);
                h.finish()
            })
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 1024, "all 1024 keys must hash distinctly");
    }
}
