//! Boot-time (and migration-time) recovery: replaying a [`RecoveredLog`]
//! through the live [`SchedulerService`].
//!
//! Recovery *is* replay: for each recovered session the original
//! [`SessionOpen`] is re-issued (the solver is deterministic, so the
//! initial schedule is bit-identical), then every journaled event flows
//! through [`SchedulerService::apply`] — the same code path that produced
//! the pre-crash state, validated end-to-end by the server-vs-sim trace
//! digest oracle. Events the service rejected before the crash are
//! rejected identically on replay and counted, never fatal. After the
//! snapshot-covered prefix replays, the snapshot's integrity checks
//! (schedule size, utility Ω bit pattern) are verified before the WAL tail
//! is applied.
//!
//! [`SessionOpen`]: ses_service::SessionOpen
//! [`SchedulerService::apply`]: ses_service::SchedulerService::apply

use crate::wal::{RecoveredLog, RecoveredSession};
use serde::{Deserialize, Serialize};
use ses_service::{InstanceRegistry, SchedulerService};
use std::path::Path;

/// What one shard's recovery did, serialized as `recovery.json` in the
/// shard's WAL directory so post-crash state is inspectable (and a CI
/// artifact).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Sessions rebuilt and live again.
    pub sessions_recovered: u64,
    /// Sessions whose open could not be replayed (unknown instance, solver
    /// failure) — listed in `errors`.
    pub sessions_failed: u64,
    /// Events re-applied through the service.
    pub events_replayed: u64,
    /// Events the service rejected on replay (it rejected them before the
    /// crash too — see the write-ahead ordering note in the WAL docs).
    pub events_rejected: u64,
    /// Records skipped during the disk scan (unknown or closed sessions).
    pub records_skipped: u64,
    /// Torn-tail description when the last segment was truncated.
    #[serde(default)]
    pub torn_tail: Option<String>,
    /// Snapshot integrity-check failures (session kept, tail still
    /// applied; the digest oracle is the final arbiter).
    #[serde(default)]
    pub check_failures: Vec<String>,
    /// Scan and replay errors, human-readable.
    #[serde(default)]
    pub errors: Vec<String>,
    /// Highest LSN found on disk.
    pub max_lsn: u64,
}

impl RecoveryReport {
    /// Writes the report as pretty JSON into `dir/recovery.json`
    /// (best-effort value for operators and CI artifacts; the returned
    /// error is informational).
    pub fn write_json(&self, dir: &Path) -> Result<(), String> {
        let path = dir.join("recovery.json");
        let json = serde_json::to_string_pretty(self).map_err(|e| e.to_string())?;
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))
    }
}

/// Replays one recovered session into the service. Returns the error text
/// when the open itself fails (the session is then not live).
fn replay_session(
    service: &mut SchedulerService,
    registry: &InstanceRegistry,
    session: &RecoveredSession,
    report: &mut RecoveryReport,
) -> Result<(), String> {
    let mut span = ses_obs::span(ses_obs::Stage::Recover);
    let instance = registry
        .get(session.open.instance.as_str())
        .map_err(|e| format!("session '{}': instance: {e}", session.name))?;
    service
        .open_session(&instance, &session.open)
        .map_err(|e| format!("session '{}': open replay: {e}", session.name))?;
    let mut replayed = 0u64;
    for event in &session.snapshot_events {
        match service.apply(&session.name, event) {
            Ok(_) => report.events_replayed += 1,
            Err(e) => {
                report.events_rejected += 1;
                ses_obs::log(
                    ses_obs::Level::Debug,
                    "durable",
                    "replay rejected event (rejected identically before the crash)",
                    &[
                        ("session", ses_obs::FieldValue::Str(session.name.clone())),
                        ("error", ses_obs::FieldValue::Str(e.to_string())),
                    ],
                );
            }
        }
        replayed += 1;
    }
    if let Some(check) = session.check {
        match service.report(&session.name) {
            Ok(state) => {
                if state.utility.to_bits() != check.utility_bits
                    || state.scheduled != check.scheduled
                {
                    report.check_failures.push(format!(
                        "session '{}': snapshot check mismatch at lsn {} \
                         (scheduled {} vs {}, utility bits {:#018x} vs {:#018x})",
                        session.name,
                        session.snapshot_lsn,
                        state.scheduled,
                        check.scheduled,
                        state.utility.to_bits(),
                        check.utility_bits,
                    ));
                }
            }
            Err(e) => report.check_failures.push(format!(
                "session '{}': snapshot check report: {e}",
                session.name
            )),
        }
    }
    for event in &session.tail_events {
        match service.apply(&session.name, event) {
            Ok(_) => report.events_replayed += 1,
            Err(_) => report.events_rejected += 1,
        }
        replayed += 1;
    }
    span.set_aux(replayed, u64::from(session.check.is_some()));
    Ok(())
}

/// Replays every session in `log` through `service`, resolving instances
/// by name via `registry`. A session whose open fails is dropped with an
/// error in the report; everything else recovers. Never panics.
pub fn recover_sessions(
    service: &mut SchedulerService,
    registry: &InstanceRegistry,
    log: &RecoveredLog,
) -> RecoveryReport {
    let mut report = RecoveryReport {
        records_skipped: log.records_skipped,
        torn_tail: log.torn_tail.clone(),
        errors: log.scan_errors.clone(),
        max_lsn: log.max_lsn,
        ..RecoveryReport::default()
    };
    for session in &log.sessions {
        match replay_session(service, registry, session, &mut report) {
            Ok(()) => report.sessions_recovered += 1,
            Err(e) => {
                report.sessions_failed += 1;
                report.errors.push(e);
            }
        }
    }
    report
}
