//! The per-shard write-ahead log: segmented record files, per-session
//! snapshots, and the in-memory session journal mirror that snapshots and
//! migration ship.
//!
//! ## Record framing
//!
//! A segment file is an 8-byte magic (`SESWALOG`) + a `u32` LE format
//! version, followed by records framed exactly like the instance store's
//! sections (DESIGN.md §12): `[u8 kind][u64 LE payload_len][payload]
//! [u64 LE checksum]`. The checksum is the store's four-lane FNV-1a fold
//! ([`ses_core::FoldState`]) over the kind byte plus the payload — the
//! kind byte is included so a bit flip that turns one record kind into
//! another (an `event` into a `close`, say) can never pass verification
//! even when the payload happens to parse under both shapes.
//!
//! Payloads are the crate's serde wire types as JSON: the same
//! [`SessionOpen`]/[`SessionEvent`] bodies the HTTP API carries, wrapped
//! with the record's LSN. Replaying the log is therefore *literally* a
//! replay of the request stream through [`SchedulerService::apply`], which
//! is what makes the server-vs-sim trace digest the recovery oracle.
//!
//! ## Write-ahead ordering
//!
//! The shard appends a record (and applies the fsync policy) *before*
//! handing the operation to the service. Operations the service then
//! rejects (duplicate open, unknown session, out-of-universe event) leave
//! a record behind — deliberately: `apply` is deterministic, so recovery
//! replays the record and rejects it identically, and the journal mirror
//! applies the same acceptance rules (see [`ShardWal::append_open`]).
//!
//! [`SchedulerService::apply`]: ses_service::SchedulerService::apply
//! [`SessionOpen`]: ses_service::SessionOpen
//! [`SessionEvent`]: ses_service::SessionEvent

use serde::{Deserialize, Serialize};
use ses_core::FoldState;
use ses_service::{SessionEvent, SessionOpen};
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SESWALOG";
/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SESWSNAP";
/// On-disk format version (bumped on incompatible layout changes).
pub const FORMAT_VERSION: u32 = 1;
/// Bytes of segment/snapshot header: magic + version.
pub const HEADER_LEN: u64 = 12;

/// Record kind: a session open (payload [`WalOpen`]).
pub const REC_OPEN: u8 = 0x01;
/// Record kind: a session event (payload [`WalEvent`]).
pub const REC_EVENT: u8 = 0x02;
/// Record kind: a session close or departure (payload [`WalClose`]).
pub const REC_CLOSE: u8 = 0x03;
/// Record kind: a full session snapshot (payload [`SessionSnapshot`];
/// snapshot files only).
pub const REC_SNAPSHOT: u8 = 0x04;

/// Human-readable name of a record kind.
pub fn record_kind_name(kind: u8) -> &'static str {
    match kind {
        REC_OPEN => "open",
        REC_EVENT => "event",
        REC_CLOSE => "close",
        REC_SNAPSHOT => "snapshot",
        _ => "unknown",
    }
}

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every record: an acknowledged event is never lost.
    PerRecord,
    /// `fdatasync` at most once per `millis`: bounded loss window, near
    /// fsync-free throughput.
    Interval {
        /// Maximum milliseconds between syncs.
        millis: u64,
    },
    /// Never fsync (the OS flushes on its own schedule): crash loses the
    /// unflushed tail, kept for benchmarking the framing overhead alone.
    Off,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `per-record`, `interval`,
    /// `interval:<millis>`, or `off`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "per-record" => Ok(FsyncPolicy::PerRecord),
            "interval" => Ok(FsyncPolicy::Interval { millis: 25 }),
            "off" => Ok(FsyncPolicy::Off),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse()
                    .map(|millis| FsyncPolicy::Interval { millis })
                    .map_err(|_| format!("bad fsync interval millis: {ms:?}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected per-record, interval[:millis], off)"
                )),
            },
        }
    }

    /// Stable label used in reports.
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::PerRecord => "per-record".to_owned(),
            FsyncPolicy::Interval { millis } => format!("interval:{millis}"),
            FsyncPolicy::Off => "off".to_owned(),
        }
    }
}

/// Everything that can go wrong in the WAL layer. Every variant is a typed,
/// displayable error — the durability layer never panics on bad input
/// (torn tails and flipped bits are *expected* inputs after a crash).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalError {
    /// An OS-level I/O failure.
    Io {
        /// What the WAL was doing.
        op: &'static str,
        /// The file or directory involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The offending file.
        path: String,
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// The offending file.
        path: String,
        /// Version found in the header.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// The file ends mid-record (the classic torn tail).
    Truncated {
        /// The offending file.
        path: String,
        /// Byte offset of the record that ran off the end.
        offset: u64,
    },
    /// A record's checksum does not match its bytes.
    ChecksumMismatch {
        /// The offending file.
        path: String,
        /// Byte offset of the record.
        offset: u64,
        /// Checksum stored on disk.
        expected: u64,
        /// Checksum recomputed from the bytes.
        actual: u64,
    },
    /// A record's framing or payload is structurally invalid.
    Corrupt {
        /// The offending file.
        path: String,
        /// Byte offset of the record.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, path, message } => write!(f, "wal {op} on {path}: {message}"),
            WalError::BadMagic { path } => write!(f, "{path}: not a ses WAL file (bad magic)"),
            WalError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "{path}: format version {found} (this build reads up to {supported})"
            ),
            WalError::Truncated { path, offset } => {
                write!(f, "{path}: torn record at byte {offset} (file ends mid-record)")
            }
            WalError::ChecksumMismatch {
                path,
                offset,
                expected,
                actual,
            } => write!(
                f,
                "{path}: checksum mismatch at byte {offset} (stored {expected:#018x}, computed {actual:#018x})"
            ),
            WalError::Corrupt {
                path,
                offset,
                detail,
            } => write!(f, "{path}: corrupt record at byte {offset}: {detail}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> WalError {
    WalError::Io {
        op,
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Payload of a [`REC_OPEN`] record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalOpen {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The open request, verbatim.
    pub open: SessionOpen,
}

/// Payload of a [`REC_EVENT`] record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEvent {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The session the event addressed.
    pub name: String,
    /// The event, verbatim.
    pub event: SessionEvent,
}

/// Payload of a [`REC_CLOSE`] record: the session was closed by a client,
/// or left this shard through migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalClose {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The session that closed.
    pub name: String,
}

/// A session's complete replayable history: the open request plus every
/// event since, in application order. This is what snapshots persist and
/// what migration ships between shards — state is never serialized, only
/// the inputs that deterministically rebuild it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionJournal {
    /// Session name.
    pub name: String,
    /// The original open request.
    pub open: SessionOpen,
    /// Every event appended since the open, in order (including events the
    /// service rejected — replay rejects them identically).
    pub events: Vec<SessionEvent>,
}

/// Payload of a [`REC_SNAPSHOT`] record: one session's journal compacted to
/// a single checksummed file, plus cheap integrity checks of the state the
/// journal rebuilds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// LSN of the last record folded into this snapshot; WAL records with
    /// `lsn <=` this are redundant for the session.
    pub lsn: u64,
    /// The compacted journal.
    pub journal: SessionJournal,
    /// Schedule size after replaying the journal (integrity check).
    pub scheduled: usize,
    /// Bit pattern of the utility Ω after replaying the journal
    /// (integrity check — recovery verifies this bit-for-bit).
    pub utility_bits: u64,
}

/// Encodes one framed record into `buf`.
pub fn encode_record(kind: u8, payload: &[u8], buf: &mut Vec<u8>) {
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let mut fold = FoldState::new();
    fold.update(&[kind]);
    fold.update(payload);
    buf.extend_from_slice(&fold.finalize().to_le_bytes());
}

/// One decoded record: its byte offset, kind, and payload slice.
pub struct RawRecord<'a> {
    /// Byte offset of the record's first byte in the file.
    pub offset: u64,
    /// Record kind byte.
    pub kind: u8,
    /// The payload bytes (checksum already verified).
    pub payload: &'a [u8],
}

/// Iterates framed records over a segment's bytes (after the header).
pub struct RecordReader<'a> {
    data: &'a [u8],
    pos: usize,
    base: u64,
    path: String,
}

impl<'a> RecordReader<'a> {
    /// A reader over `data`, reporting offsets as `base + position` (pass
    /// [`HEADER_LEN`] when `data` starts right after the file header).
    pub fn new(data: &'a [u8], base: u64, path: impl Into<String>) -> Self {
        Self {
            data,
            pos: 0,
            base,
            path: path.into(),
        }
    }

    /// Byte offset the next record would start at.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Decodes the next record, verifying its checksum. `None` at a clean
    /// end of data; an error leaves the reader parked at the bad record's
    /// offset (so callers can truncate there).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<RawRecord<'a>, WalError>> {
        let rest = &self.data[self.pos..];
        if rest.is_empty() {
            return None;
        }
        let offset = self.offset();
        if rest.len() < 9 {
            return Some(Err(WalError::Truncated {
                path: self.path.clone(),
                offset,
            }));
        }
        let kind = rest[0];
        let mut len_bytes = [0u8; 8];
        len_bytes.copy_from_slice(&rest[1..9]);
        let len = u64::from_le_bytes(len_bytes) as usize;
        let Some(total) = len.checked_add(17) else {
            return Some(Err(WalError::Corrupt {
                path: self.path.clone(),
                offset,
                detail: "payload length overflows".to_owned(),
            }));
        };
        if rest.len() < total {
            return Some(Err(WalError::Truncated {
                path: self.path.clone(),
                offset,
            }));
        }
        let payload = &rest[9..9 + len];
        let mut sum_bytes = [0u8; 8];
        sum_bytes.copy_from_slice(&rest[9 + len..total]);
        let expected = u64::from_le_bytes(sum_bytes);
        let mut fold = FoldState::new();
        fold.update(&[kind]);
        fold.update(payload);
        let actual = fold.finalize();
        if actual != expected {
            return Some(Err(WalError::ChecksumMismatch {
                path: self.path.clone(),
                offset,
                expected,
                actual,
            }));
        }
        if !matches!(kind, REC_OPEN | REC_EVENT | REC_CLOSE | REC_SNAPSHOT) {
            return Some(Err(WalError::Corrupt {
                path: self.path.clone(),
                offset,
                detail: format!("unknown record kind {kind:#04x}"),
            }));
        }
        self.pos += total;
        Some(Ok(RawRecord {
            offset,
            kind,
            payload,
        }))
    }
}

/// Reads and validates a file header, returning the record bytes.
pub fn check_header<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    path: &Path,
) -> Result<&'a [u8], WalError> {
    if bytes.len() < HEADER_LEN as usize || bytes[..8] != magic[..] {
        return Err(WalError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let mut v = [0u8; 4];
    v.copy_from_slice(&bytes[8..12]);
    let found = u32::from_le_bytes(v);
    if found > FORMAT_VERSION {
        return Err(WalError::UnsupportedVersion {
            path: path.display().to_string(),
            found,
            supported: FORMAT_VERSION,
        });
    }
    Ok(&bytes[HEADER_LEN as usize..])
}

/// How the WAL behaves: where it lives, when it syncs, when it compacts.
#[derive(Debug, Clone, PartialEq)]
pub struct WalConfig {
    /// The shard's WAL directory (created if missing).
    pub dir: PathBuf,
    /// Fsync policy for appends.
    pub fsync: FsyncPolicy,
    /// Snapshot a session after this many events since its last snapshot
    /// (`0` disables snapshots and therefore truncation).
    pub snapshot_every: u64,
    /// Seal the live segment and start a new one past this many bytes.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// Defaults for `dir`: interval fsync, snapshot every 64 events,
    /// 4 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Interval { millis: 25 },
            snapshot_every: 64,
            segment_bytes: 4 << 20,
        }
    }
}

/// Point-in-time WAL accounting, readable through the shard's `Stats`
/// round-trip (the WAL is single-threaded shard state, so these are plain
/// counters — no atomics).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WalStats {
    /// Fsync policy label.
    pub policy: String,
    /// Records appended since boot (all kinds).
    pub records: u64,
    /// Bytes appended since boot (framing included).
    pub appended_bytes: u64,
    /// `fdatasync` calls issued since boot.
    pub fsyncs: u64,
    /// Snapshot files written since boot.
    pub snapshots: u64,
    /// Segment files on disk (sealed + live).
    pub segments: u64,
    /// Sealed segments deleted by truncation since boot.
    pub segments_removed: u64,
    /// Highest LSN assigned so far (`0` = nothing appended).
    pub last_lsn: u64,
    /// Open sessions mirrored in the journal.
    pub sessions: u64,
}

struct SessionState {
    journal: SessionJournal,
    open_lsn: u64,
    snapshot_lsn: u64,
    events_since_snapshot: u64,
    last_lsn: u64,
}

struct SealedSegment {
    path: PathBuf,
    max_lsn: u64,
}

/// A session recovered from disk, split at its snapshot boundary so the
/// replayer can verify the snapshot's integrity checks before applying the
/// tail.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSession {
    /// Session name.
    pub name: String,
    /// The original open request.
    pub open: SessionOpen,
    /// Events covered by the snapshot (empty when there was none).
    pub snapshot_events: Vec<SessionEvent>,
    /// Events past the snapshot, from the WAL tail.
    pub tail_events: Vec<SessionEvent>,
    /// LSN of the snapshot (`0` = no snapshot).
    pub snapshot_lsn: u64,
    /// The snapshot's integrity checks, verified after replaying
    /// `snapshot_events`.
    pub check: Option<SnapshotCheck>,
}

/// The cheap state checks a snapshot carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotCheck {
    /// Expected schedule size.
    pub scheduled: usize,
    /// Expected utility Ω bit pattern.
    pub utility_bits: u64,
}

/// Everything [`ShardWal::open`] reconstructed from disk, ready to replay
/// through the service (see [`crate::recover_sessions`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredLog {
    /// Sessions alive at the crash/shutdown point, sorted by name.
    pub sessions: Vec<RecoveredSession>,
    /// Records skipped because their session was unknown or closed.
    pub records_skipped: u64,
    /// Torn-tail description, when the last segment was cleanly truncated.
    pub torn_tail: Option<String>,
    /// Non-tail scan problems (corrupt mid-log segments moved aside,
    /// unreadable snapshots, …).
    pub scan_errors: Vec<String>,
    /// Highest LSN seen on disk.
    pub max_lsn: u64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:08}.wal"))
}

fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    // FNV-1a of the name: session names are arbitrary percent-decoded
    // strings, so the file name carries a stable hash instead.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    dir.join(format!("snap-{h:016x}.snap"))
}

fn write_header(buf: &mut Vec<u8>, magic: &[u8; 8]) {
    buf.extend_from_slice(magic);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
}

struct Building {
    open: SessionOpen,
    open_lsn: u64,
    snapshot_events: Vec<SessionEvent>,
    tail: Vec<(u64, SessionEvent)>,
    snapshot_lsn: u64,
    check: Option<SnapshotCheck>,
}

/// One shard's write-ahead log. Owned by the shard worker thread; all
/// methods take `&mut self` and never block on other shards.
pub struct ShardWal {
    cfg: WalConfig,
    file: File,
    live_path: PathBuf,
    segment_index: u64,
    live_bytes: u64,
    live_max_lsn: u64,
    sealed: Vec<SealedSegment>,
    next_lsn: u64,
    sessions: BTreeMap<String, SessionState>,
    records: u64,
    appended_bytes: u64,
    fsyncs: u64,
    snapshots_written: u64,
    segments_removed: u64,
    dirty_since_sync: bool,
    last_sync_ns: u64,
    append_hist: ses_obs::Histogram,
    fsync_hist: ses_obs::Histogram,
}

impl ShardWal {
    /// Opens (or creates) the WAL in `cfg.dir`, scanning snapshots and
    /// segments into a [`RecoveredLog`]. Torn tails are truncated in place;
    /// mid-log corruption moves the unreadable suffix aside (`.corrupt`)
    /// so the log stays prefix-consistent. Never panics on bad bytes.
    pub fn open(cfg: WalConfig) -> Result<(Self, RecoveredLog), WalError> {
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err("create dir", &cfg.dir, e))?;
        let mut log = RecoveredLog::default();

        // Snapshots first: they seed the per-session journals.
        let mut snapshots: BTreeMap<String, (PathBuf, SessionSnapshot)> = BTreeMap::new();
        let mut segment_files: Vec<(u64, PathBuf)> = Vec::new();
        let entries = fs::read_dir(&cfg.dir).map_err(|e| io_err("read dir", &cfg.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read dir", &cfg.dir, e))?;
            let path = entry.path();
            let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(idx) = file_name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
            {
                if let Ok(index) = idx.parse::<u64>() {
                    segment_files.push((index, path));
                }
            } else if file_name.starts_with("snap-") && file_name.ends_with(".snap") {
                match read_snapshot_file(&path) {
                    Ok(snap) => {
                        let keep = snapshots
                            .get(&snap.journal.name)
                            .is_none_or(|(_, old)| old.lsn < snap.lsn);
                        if keep {
                            snapshots.insert(snap.journal.name.clone(), (path, snap));
                        }
                    }
                    Err(e) => log.scan_errors.push(e.to_string()),
                }
            }
        }
        segment_files.sort_by_key(|(index, _)| *index);

        let mut building: BTreeMap<String, Building> = BTreeMap::new();
        let mut stale_snapshots: Vec<PathBuf> = Vec::new();
        for (name, (_path, snap)) in &snapshots {
            building.insert(
                name.clone(),
                Building {
                    open: snap.journal.open.clone(),
                    open_lsn: 0,
                    snapshot_events: snap.journal.events.clone(),
                    tail: Vec::new(),
                    snapshot_lsn: snap.lsn,
                    check: Some(SnapshotCheck {
                        scheduled: snap.scheduled,
                        utility_bits: snap.utility_bits,
                    }),
                },
            );
            log.max_lsn = log.max_lsn.max(snap.lsn);
        }

        let mut sealed = Vec::new();
        let mut poisoned_from: Option<usize> = None;
        for (i, (_index, path)) in segment_files.iter().enumerate() {
            if poisoned_from.is_some() {
                break;
            }
            let last_segment = i + 1 == segment_files.len();
            let bytes = fs::read(path).map_err(|e| io_err("read segment", path, e))?;
            let records = match check_header(&bytes, &SEGMENT_MAGIC, path) {
                Ok(r) => r,
                Err(e) => {
                    // Unreadable header: nothing in this segment is usable.
                    log.scan_errors.push(e.to_string());
                    poisoned_from = Some(i);
                    break;
                }
            };
            let mut reader = RecordReader::new(records, HEADER_LEN, path.display().to_string());
            let mut seg_max_lsn = 0u64;
            let mut torn_at: Option<(u64, WalError)> = None;
            loop {
                let rec = match reader.next() {
                    None => break,
                    Some(Ok(rec)) => rec,
                    Some(Err(e)) => {
                        torn_at = Some((reader.offset(), e));
                        break;
                    }
                };
                match decode_into(&rec, &mut building, &mut snapshots, &mut stale_snapshots) {
                    Ok(lsn) => {
                        seg_max_lsn = seg_max_lsn.max(lsn);
                        log.max_lsn = log.max_lsn.max(lsn);
                    }
                    Err(Skip::UnknownSession) => log.records_skipped += 1,
                    Err(Skip::Covered) => {}
                    Err(Skip::Bad(detail)) => {
                        log.scan_errors.push(format!(
                            "{}: record at byte {} undecodable: {detail}",
                            path.display(),
                            rec.offset
                        ));
                        log.records_skipped += 1;
                    }
                }
            }
            if let Some((offset, e)) = torn_at {
                if last_segment {
                    // The torn tail of a crashed append: truncate to the
                    // last whole record and carry on.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|er| io_err("open for truncate", path, er))?;
                    f.set_len(offset)
                        .map_err(|er| io_err("truncate", path, er))?;
                    f.sync_all()
                        .map_err(|er| io_err("sync truncate", path, er))?;
                    log.torn_tail = Some(format!("{e} — truncated to {offset} bytes"));
                } else {
                    // Mid-log corruption is not a torn tail; move the bad
                    // segment and everything after it aside so the log
                    // stays a clean prefix.
                    log.scan_errors.push(e.to_string());
                    poisoned_from = Some(i);
                    break;
                }
            }
            sealed.push(SealedSegment {
                path: path.clone(),
                max_lsn: seg_max_lsn,
            });
        }
        if let Some(from) = poisoned_from {
            for (_, path) in &segment_files[from..] {
                let aside = path.with_extension("wal.corrupt");
                match fs::rename(path, &aside) {
                    Ok(()) => log.scan_errors.push(format!(
                        "moved unreadable segment {} aside as {}",
                        path.display(),
                        aside.display()
                    )),
                    Err(e) => return Err(io_err("move corrupt segment", path, e)),
                }
            }
        }
        for path in stale_snapshots {
            let _ = fs::remove_file(path);
        }

        // Fresh live segment past everything on disk.
        let segment_index = segment_files.last().map_or(0, |(i, _)| i + 1);
        let live_path = segment_path(&cfg.dir, segment_index);
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        write_header(&mut header, &SEGMENT_MAGIC);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&live_path)
            .map_err(|e| io_err("create segment", &live_path, e))?;
        file.write_all(&header)
            .map_err(|e| io_err("write header", &live_path, e))?;

        // The in-memory mirror and the replay list.
        let mut sessions = BTreeMap::new();
        for (name, b) in building {
            let mut events = b.snapshot_events.clone();
            events.extend(b.tail.iter().map(|(_, e)| e.clone()));
            let last_lsn = b.tail.last().map_or(b.snapshot_lsn, |(lsn, _)| *lsn);
            sessions.insert(
                name.clone(),
                SessionState {
                    journal: SessionJournal {
                        name: name.clone(),
                        open: b.open.clone(),
                        events,
                    },
                    open_lsn: b.open_lsn,
                    snapshot_lsn: b.snapshot_lsn,
                    events_since_snapshot: b.tail.len() as u64,
                    last_lsn,
                },
            );
            log.sessions.push(RecoveredSession {
                name,
                open: b.open,
                snapshot_events: b.snapshot_events,
                tail_events: b.tail.into_iter().map(|(_, e)| e).collect(),
                snapshot_lsn: b.snapshot_lsn,
                check: b.check,
            });
        }

        let wal = Self {
            next_lsn: log.max_lsn + 1,
            cfg,
            file,
            live_path,
            segment_index,
            live_bytes: HEADER_LEN,
            live_max_lsn: 0,
            sealed,
            sessions,
            records: 0,
            appended_bytes: 0,
            fsyncs: 0,
            snapshots_written: 0,
            segments_removed: 0,
            dirty_since_sync: false,
            last_sync_ns: ses_obs::now_ns(),
            append_hist: ses_obs::Histogram::new(),
            fsync_hist: ses_obs::Histogram::new(),
        };
        Ok((wal, log))
    }

    /// The WAL's directory.
    pub fn dir(&self) -> &Path {
        &self.cfg.dir
    }

    /// Appends a session-open record; the session joins the journal mirror
    /// unless the name is already live (in which case the service will
    /// reject the open, and recovery will skip the record the same way).
    pub fn append_open(&mut self, open: &SessionOpen) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let payload = to_payload(&WalOpen {
            lsn,
            open: open.clone(),
        })?;
        self.append(REC_OPEN, &payload)?;
        if !self.sessions.contains_key(&open.name) {
            self.sessions.insert(
                open.name.clone(),
                SessionState {
                    journal: SessionJournal {
                        name: open.name.clone(),
                        open: open.clone(),
                        events: Vec::new(),
                    },
                    open_lsn: lsn,
                    snapshot_lsn: 0,
                    events_since_snapshot: 0,
                    last_lsn: lsn,
                },
            );
        }
        Ok(lsn)
    }

    /// Appends a session-event record and mirrors it into the session's
    /// journal (events for unknown sessions are logged but not mirrored —
    /// the service rejects them, and recovery skips them identically).
    pub fn append_event(&mut self, name: &str, event: &SessionEvent) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let payload = to_payload(&WalEvent {
            lsn,
            name: name.to_owned(),
            event: event.clone(),
        })?;
        self.append(REC_EVENT, &payload)?;
        if let Some(s) = self.sessions.get_mut(name) {
            s.journal.events.push(event.clone());
            s.events_since_snapshot += 1;
            s.last_lsn = lsn;
        }
        Ok(lsn)
    }

    /// Appends a close record and drops the session from the mirror (and
    /// its snapshot from disk).
    pub fn append_close(&mut self, name: &str) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let payload = to_payload(&WalClose {
            lsn,
            name: name.to_owned(),
        })?;
        self.append(REC_CLOSE, &payload)?;
        if self.sessions.remove(name).is_some() {
            let _ = fs::remove_file(snapshot_path(&self.cfg.dir, name));
        }
        Ok(lsn)
    }

    /// Writes a snapshot of `name` if it has accumulated
    /// `cfg.snapshot_every` events since the last one, then truncates any
    /// sealed segment every live session has outgrown. `scheduled` and
    /// `utility` are the session's current state, recorded as integrity
    /// checks. Returns the snapshot LSN when one was written.
    pub fn maybe_snapshot(
        &mut self,
        name: &str,
        scheduled: usize,
        utility: f64,
    ) -> Result<Option<u64>, WalError> {
        if self.cfg.snapshot_every == 0 {
            return Ok(None);
        }
        let Some(s) = self.sessions.get(name) else {
            return Ok(None);
        };
        if s.events_since_snapshot < self.cfg.snapshot_every {
            return Ok(None);
        }
        let snap = SessionSnapshot {
            lsn: s.last_lsn,
            journal: s.journal.clone(),
            scheduled,
            utility_bits: utility.to_bits(),
        };
        let mut span = ses_obs::span(ses_obs::Stage::Wal);
        let path = snapshot_path(&self.cfg.dir, name);
        let bytes = write_snapshot_file(&path, &snap)?;
        span.set_aux(bytes, 1);
        drop(span);
        // Only now that the file is durably in place does the session's
        // stable point move.
        if let Some(s) = self.sessions.get_mut(name) {
            s.snapshot_lsn = snap.lsn;
            s.events_since_snapshot = 0;
        }
        self.snapshots_written += 1;
        self.truncate_covered();
        Ok(Some(snap.lsn))
    }

    /// Removes the session from this WAL for migration: its full journal is
    /// returned, a close record marks the departure (so recovery never
    /// resurrects it here), and its snapshot file is deleted.
    pub fn extract(&mut self, name: &str) -> Result<Option<SessionJournal>, WalError> {
        if !self.sessions.contains_key(name) {
            return Ok(None);
        }
        let journal = self.sessions.get(name).map(|s| s.journal.clone());
        self.append_close(name)?;
        self.flush()?;
        Ok(journal)
    }

    /// Installs a migrated session's journal into this WAL: the open and
    /// every event are re-logged with fresh LSNs (the journal is replayed
    /// through the service by the caller). Returns the last LSN appended.
    pub fn install(&mut self, journal: &SessionJournal) -> Result<u64, WalError> {
        let mut lsn = self.append_open(&journal.open)?;
        for event in &journal.events {
            lsn = self.append_event(&journal.name, event)?;
        }
        self.flush()?;
        Ok(lsn)
    }

    /// Syncs any unflushed appends to disk (used at graceful shutdown and
    /// after migration installs; a no-op when nothing is pending).
    pub fn flush(&mut self) -> Result<(), WalError> {
        if self.dirty_since_sync {
            self.fsync()?;
        }
        Ok(())
    }

    /// The session's mirrored journal, if it is live on this shard.
    pub fn journal(&self, name: &str) -> Option<&SessionJournal> {
        self.sessions.get(name).map(|s| &s.journal)
    }

    /// Current accounting.
    pub fn stats(&self) -> WalStats {
        WalStats {
            policy: self.cfg.fsync.label(),
            records: self.records,
            appended_bytes: self.appended_bytes,
            fsyncs: self.fsyncs,
            snapshots: self.snapshots_written,
            segments: self.sealed.len() as u64 + 1,
            segments_removed: self.segments_removed,
            last_lsn: self.next_lsn - 1,
            sessions: self.sessions.len() as u64,
        }
    }

    /// Distribution of append latencies (µs), fsync time included when the
    /// append synced.
    pub fn append_latencies(&self) -> ses_obs::HistogramSnapshot {
        self.append_hist.snapshot()
    }

    /// Distribution of fsync latencies (µs).
    pub fn fsync_latencies(&self) -> ses_obs::HistogramSnapshot {
        self.fsync_hist.snapshot()
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), WalError> {
        let start_ns = ses_obs::now_ns();
        let mut buf = Vec::with_capacity(payload.len() + 17);
        encode_record(kind, payload, &mut buf);
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append", &self.live_path, e))?;
        self.live_bytes += buf.len() as u64;
        self.live_max_lsn = self.next_lsn;
        self.records += 1;
        self.appended_bytes += buf.len() as u64;
        self.dirty_since_sync = true;
        let synced = match self.cfg.fsync {
            FsyncPolicy::PerRecord => {
                self.fsync()?;
                true
            }
            FsyncPolicy::Interval { millis } => {
                if ses_obs::now_ns().saturating_sub(self.last_sync_ns) >= millis * 1_000_000 {
                    self.fsync()?;
                    true
                } else {
                    false
                }
            }
            FsyncPolicy::Off => false,
        };
        self.next_lsn += 1;
        let dur_ns = ses_obs::now_ns().saturating_sub(start_ns);
        self.append_hist.record(dur_ns / 1_000);
        let mut span = ses_obs::span(ses_obs::Stage::Wal);
        span.set_aux(buf.len() as u64, u64::from(synced));
        drop(span);
        if self.live_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn fsync(&mut self) -> Result<(), WalError> {
        let start_ns = ses_obs::now_ns();
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync", &self.live_path, e))?;
        self.fsyncs += 1;
        self.dirty_since_sync = false;
        self.last_sync_ns = ses_obs::now_ns();
        self.fsync_hist
            .record(self.last_sync_ns.saturating_sub(start_ns) / 1_000);
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // Seal the live segment: it must be durable before the new one
        // takes appends, or truncation accounting could outrun the disk.
        if self.dirty_since_sync && self.cfg.fsync != FsyncPolicy::Off {
            self.fsync()?;
        }
        self.sealed.push(SealedSegment {
            path: self.live_path.clone(),
            max_lsn: self.live_max_lsn,
        });
        self.segment_index += 1;
        self.live_path = segment_path(&self.cfg.dir, self.segment_index);
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        write_header(&mut header, &SEGMENT_MAGIC);
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&self.live_path)
            .map_err(|e| io_err("create segment", &self.live_path, e))?;
        file.write_all(&header)
            .map_err(|e| io_err("write header", &self.live_path, e))?;
        self.file = file;
        self.live_bytes = HEADER_LEN;
        self.live_max_lsn = 0;
        self.dirty_since_sync = false;
        self.truncate_covered();
        Ok(())
    }

    /// Deletes sealed segments every live session has outgrown: a segment
    /// is droppable when its highest LSN is at or below every session's
    /// stable point (its snapshot LSN, or just before its open record when
    /// it has no snapshot). With no live sessions, everything sealed is
    /// droppable.
    fn truncate_covered(&mut self) {
        let floor = self
            .sessions
            .values()
            .map(|s| {
                if s.snapshot_lsn > 0 {
                    s.snapshot_lsn
                } else {
                    s.open_lsn.saturating_sub(1)
                }
            })
            .min()
            .unwrap_or(u64::MAX);
        let mut kept = Vec::with_capacity(self.sealed.len());
        for seg in self.sealed.drain(..) {
            if seg.max_lsn <= floor && fs::remove_file(&seg.path).is_ok() {
                self.segments_removed += 1;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
    }
}

enum Skip {
    UnknownSession,
    Covered,
    Bad(String),
}

fn decode_into(
    rec: &RawRecord<'_>,
    building: &mut BTreeMap<String, Building>,
    snapshots: &mut BTreeMap<String, (PathBuf, SessionSnapshot)>,
    stale_snapshots: &mut Vec<PathBuf>,
) -> Result<u64, Skip> {
    match rec.kind {
        REC_OPEN => {
            let open: WalOpen = from_payload(rec.payload).map_err(Skip::Bad)?;
            let name = open.open.name.clone();
            if building.contains_key(&name) {
                // A duplicate open the service rejected (or one already
                // covered by this session's snapshot).
                return Err(Skip::Covered);
            }
            let lsn = open.lsn;
            building.insert(
                name,
                Building {
                    open: open.open,
                    open_lsn: lsn,
                    snapshot_events: Vec::new(),
                    tail: Vec::new(),
                    snapshot_lsn: 0,
                    check: None,
                },
            );
            Ok(lsn)
        }
        REC_EVENT => {
            let ev: WalEvent = from_payload(rec.payload).map_err(Skip::Bad)?;
            match building.get_mut(&ev.name) {
                None => Err(Skip::UnknownSession),
                Some(b) if ev.lsn <= b.snapshot_lsn => Err(Skip::Covered),
                Some(b) => {
                    let lsn = ev.lsn;
                    b.tail.push((lsn, ev.event));
                    Ok(lsn)
                }
            }
        }
        REC_CLOSE => {
            let close: WalClose = from_payload(rec.payload).map_err(Skip::Bad)?;
            match building.get(&close.name) {
                None => Err(Skip::UnknownSession),
                Some(b) if close.lsn <= b.snapshot_lsn => Err(Skip::Covered),
                Some(_) => {
                    building.remove(&close.name);
                    if let Some((path, _)) = snapshots.remove(&close.name) {
                        stale_snapshots.push(path);
                    }
                    Ok(close.lsn)
                }
            }
        }
        REC_SNAPSHOT => Err(Skip::Bad(
            "snapshot record inside a segment file".to_owned(),
        )),
        other => Err(Skip::Bad(format!("unknown record kind {other:#04x}"))),
    }
}

fn to_payload<T: Serialize>(value: &T) -> Result<Vec<u8>, WalError> {
    serde_json::to_string(value)
        .map(String::into_bytes)
        .map_err(|e| WalError::Io {
            op: "serialize",
            path: String::new(),
            message: e.to_string(),
        })
}

fn from_payload<T: Deserialize>(payload: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(payload).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| e.to_string())
}

/// Writes one snapshot file atomically (tmp + rename + fsync).
pub fn write_snapshot_file(path: &Path, snap: &SessionSnapshot) -> Result<u64, WalError> {
    let payload = to_payload(snap)?;
    let mut buf = Vec::with_capacity(payload.len() + HEADER_LEN as usize + 17);
    write_header(&mut buf, &SNAPSHOT_MAGIC);
    encode_record(REC_SNAPSHOT, &payload, &mut buf);
    let tmp = path.with_extension("snap.tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create snapshot", &tmp, e))?;
    f.write_all(&buf)
        .map_err(|e| io_err("write snapshot", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("sync snapshot", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("publish snapshot", path, e))?;
    Ok(buf.len() as u64)
}

/// Reads and verifies one snapshot file.
pub fn read_snapshot_file(path: &Path) -> Result<SessionSnapshot, WalError> {
    let bytes = fs::read(path).map_err(|e| io_err("read snapshot", path, e))?;
    let records = check_header(&bytes, &SNAPSHOT_MAGIC, path)?;
    let mut reader = RecordReader::new(records, HEADER_LEN, path.display().to_string());
    let rec = match reader.next() {
        Some(Ok(rec)) if rec.kind == REC_SNAPSHOT => rec,
        Some(Ok(rec)) => {
            return Err(WalError::Corrupt {
                path: path.display().to_string(),
                offset: rec.offset,
                detail: format!(
                    "expected snapshot record, found {}",
                    record_kind_name(rec.kind)
                ),
            })
        }
        Some(Err(e)) => return Err(e),
        None => {
            return Err(WalError::Truncated {
                path: path.display().to_string(),
                offset: HEADER_LEN,
            })
        }
    };
    from_payload(rec.payload).map_err(|detail| WalError::Corrupt {
        path: path.display().to_string(),
        offset: rec.offset,
        detail,
    })
}
