//! # ses-durable — per-shard durability for online scheduling sessions
//!
//! The paper's SES problem is inherently online: events, cancellations and
//! arrivals stream into live [`OnlineSession`]s that, before this crate,
//! lived only in shard memory. `ses-durable` makes a shard's sessions
//! survive a crash and move between shards, with three std-only pieces:
//!
//! * [`ShardWal`] — a per-shard append-only write-ahead log of
//!   [`SessionOpen`]/[`SessionEvent`] wire bodies, in segmented files
//!   framed `[kind][len][payload][checksum]` with the instance store's
//!   four-lane FNV-1a checksum ([`ses_core::FoldState`]), under a
//!   configurable [`FsyncPolicy`] (per-record / interval-batched / off);
//! * per-session **snapshots** ([`SessionSnapshot`]) — the session's
//!   journal compacted to one atomically-replaced file, after which WAL
//!   segments every session has outgrown are deleted;
//! * **recovery** ([`recover_sessions`]) — replaying snapshot + WAL tail
//!   through [`SchedulerService::apply`], the same code path that produced
//!   the pre-crash state. Torn tails are detected by checksum and cleanly
//!   truncated; corruption is a typed [`WalError`], never a panic (this
//!   crate's request-path files are under the workspace
//!   `server-panic-discipline` lint).
//!
//! Because the log stores *requests*, not state, recovery correctness
//! reduces to the determinism the workspace already pins: the
//! server-vs-simulator replay digest (`ses-server`'s `verify_replay`) must
//! come out bit-identical across a kill-and-recover, which the integration
//! suite and the CI smoke job assert. The same journal-shipping machinery
//! drives live session migration (`POST /admin/rebalance`): the owning
//! shard drains and extracts the [`SessionJournal`], the target re-logs
//! and replays it, and the server atomically re-routes the name-hash
//! entry. See DESIGN.md §13.
//!
//! [`OnlineSession`]: ses_core::OnlineSession
//! [`SessionOpen`]: ses_service::SessionOpen
//! [`SessionEvent`]: ses_service::SessionEvent
//! [`SchedulerService::apply`]: ses_service::SchedulerService::apply
#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod inspect;
mod recover;
mod wal;

pub use inspect::{
    inspect_dir, RecordInfo, SegmentInfo, ShardInspection, SnapshotInfo, WalInspection,
};
pub use recover::{recover_sessions, RecoveryReport};
pub use wal::{
    check_header, encode_record, read_snapshot_file, record_kind_name, write_snapshot_file,
    FsyncPolicy, RawRecord, RecordReader, RecoveredLog, RecoveredSession, SessionJournal,
    SessionSnapshot, ShardWal, SnapshotCheck, WalClose, WalConfig, WalError, WalEvent, WalOpen,
    WalStats, FORMAT_VERSION, HEADER_LEN, REC_CLOSE, REC_EVENT, REC_OPEN, REC_SNAPSHOT,
    SEGMENT_MAGIC, SNAPSHOT_MAGIC,
};
