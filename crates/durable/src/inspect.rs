//! Offline WAL inspection for `ses wal inspect`: walk a `--wal-dir`,
//! decode every shard's segments and snapshots, and report what a recovery
//! would see — tolerant of torn tails and corruption (that is the point of
//! inspecting), erroring only when the directory itself is unreadable.

use crate::wal::{
    check_header, record_kind_name, RawRecord, RecordReader, SessionSnapshot, WalClose, WalEvent,
    WalOpen, HEADER_LEN, REC_CLOSE, REC_EVENT, REC_OPEN, SEGMENT_MAGIC,
};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One decoded record, for `ses wal inspect --records`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordInfo {
    /// Byte offset in the segment file.
    pub offset: u64,
    /// Record kind label (`open`, `event`, `close`).
    pub kind: String,
    /// Log sequence number.
    pub lsn: u64,
    /// Session the record addresses.
    pub session: String,
    /// Payload bytes.
    pub bytes: u64,
}

/// One segment file's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// File name (`seg-00000003.wal`).
    pub file: String,
    /// File size in bytes.
    pub bytes: u64,
    /// Whole records decoded.
    pub records: u64,
    /// Lowest LSN in the segment (`0` when empty).
    pub first_lsn: u64,
    /// Highest LSN in the segment.
    pub last_lsn: u64,
    /// Description of the torn/corrupt record that stopped the scan, if
    /// any.
    #[serde(default)]
    pub torn: Option<String>,
}

/// One snapshot file's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotInfo {
    /// File name (`snap-<hash>.snap`).
    pub file: String,
    /// Session the snapshot covers.
    pub session: String,
    /// LSN the snapshot is stable at.
    pub lsn: u64,
    /// Journaled events compacted into it.
    pub events: u64,
    /// Schedule size recorded as the integrity check.
    pub scheduled: u64,
}

/// One shard directory's inspection.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardInspection {
    /// Shard directory name (`shard-0`).
    pub dir: String,
    /// Segments, index order.
    pub segments: Vec<SegmentInfo>,
    /// Snapshots, file-name order.
    pub snapshots: Vec<SnapshotInfo>,
    /// Decoded records across all segments.
    pub records: u64,
    /// Problems found (bad headers, undecodable payloads, …).
    #[serde(default)]
    pub errors: Vec<String>,
    /// Decoded records, when requested.
    #[serde(default)]
    pub record_list: Vec<RecordInfo>,
}

/// A whole `--wal-dir` inspection: one entry per `shard-*` subdirectory
/// (or a single synthetic entry when the directory itself is a shard dir).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WalInspection {
    /// Per-shard breakdown.
    pub shards: Vec<ShardInspection>,
}

fn record_info(rec: &RawRecord<'_>) -> Result<RecordInfo, String> {
    let text = std::str::from_utf8(rec.payload).map_err(|e| e.to_string())?;
    let (lsn, session) = match rec.kind {
        REC_OPEN => {
            let p: WalOpen = serde_json::from_str(text).map_err(|e| e.to_string())?;
            (p.lsn, p.open.name)
        }
        REC_EVENT => {
            let p: WalEvent = serde_json::from_str(text).map_err(|e| e.to_string())?;
            (p.lsn, p.name)
        }
        REC_CLOSE => {
            let p: WalClose = serde_json::from_str(text).map_err(|e| e.to_string())?;
            (p.lsn, p.name)
        }
        other => return Err(format!("unexpected record kind {other:#04x} in segment")),
    };
    Ok(RecordInfo {
        offset: rec.offset,
        kind: record_kind_name(rec.kind).to_owned(),
        lsn,
        session,
        bytes: rec.payload.len() as u64,
    })
}

fn inspect_shard_dir(dir: &Path, with_records: bool) -> Result<ShardInspection, String> {
    let mut out = ShardInspection {
        dir: dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(".")
            .to_owned(),
        ..ShardInspection::default()
    };
    let mut segments: Vec<(u64, std::path::PathBuf)> = Vec::new();
    let mut snapshots: Vec<std::path::PathBuf> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(idx) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
        {
            if let Ok(index) = idx.parse::<u64>() {
                segments.push((index, path));
            }
        } else if name.starts_with("snap-") && name.ends_with(".snap") {
            snapshots.push(path);
        }
    }
    segments.sort_by_key(|(i, _)| *i);
    snapshots.sort();

    for (_, path) in &segments {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_owned();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                out.errors.push(format!("read {}: {e}", path.display()));
                continue;
            }
        };
        let mut info = SegmentInfo {
            file,
            bytes: bytes.len() as u64,
            records: 0,
            first_lsn: 0,
            last_lsn: 0,
            torn: None,
        };
        match check_header(&bytes, &SEGMENT_MAGIC, path) {
            Ok(records) => {
                let mut reader = RecordReader::new(records, HEADER_LEN, path.display().to_string());
                loop {
                    match reader.next() {
                        None => break,
                        Some(Err(e)) => {
                            info.torn = Some(e.to_string());
                            break;
                        }
                        Some(Ok(rec)) => match record_info(&rec) {
                            Ok(ri) => {
                                info.records += 1;
                                if info.first_lsn == 0 {
                                    info.first_lsn = ri.lsn;
                                }
                                info.last_lsn = info.last_lsn.max(ri.lsn);
                                if with_records {
                                    out.record_list.push(ri);
                                }
                            }
                            Err(e) => {
                                out.errors.push(format!(
                                    "{}: byte {}: {e}",
                                    path.display(),
                                    rec.offset
                                ));
                            }
                        },
                    }
                }
            }
            Err(e) => out.errors.push(e.to_string()),
        }
        out.records += info.records;
        out.segments.push(info);
    }

    for path in &snapshots {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_owned();
        match crate::wal::read_snapshot_file(path) {
            Ok(SessionSnapshot {
                lsn,
                journal,
                scheduled,
                ..
            }) => out.snapshots.push(SnapshotInfo {
                file,
                session: journal.name,
                lsn,
                events: journal.events.len() as u64,
                scheduled: scheduled as u64,
            }),
            Err(e) => out.errors.push(e.to_string()),
        }
    }
    Ok(out)
}

/// Inspects a `--wal-dir`: every `shard-*` subdirectory, or the directory
/// itself when it contains segments directly.
pub fn inspect_dir(dir: &Path, with_records: bool) -> Result<WalInspection, String> {
    let mut shard_dirs: Vec<std::path::PathBuf> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut has_local_segments = false;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() && name.starts_with("shard-") {
            shard_dirs.push(path);
        } else if name.starts_with("seg-") && name.ends_with(".wal") {
            has_local_segments = true;
        }
    }
    shard_dirs.sort();
    let mut out = WalInspection::default();
    if shard_dirs.is_empty() || has_local_segments {
        out.shards.push(inspect_shard_dir(dir, with_records)?);
    }
    for d in &shard_dirs {
        out.shards.push(inspect_shard_dir(d, with_records)?);
    }
    Ok(out)
}
