//! End-to-end durability contracts for `ses-durable`:
//!
//! * append → reopen reconstructs exactly the sessions and events that
//!   were live (write-ahead mirror and recovery scan agree);
//! * recovery *through the service* rebuilds session state bit-for-bit
//!   (utility Ω, schedule size, clock) — recovery is replay;
//! * snapshots compact the journal, survive reopen, and let sealed
//!   segments be truncated;
//! * extract/install (the migration primitives) move a session between
//!   two WALs without changing its replayed state;
//! * a torn or bit-flipped tail is a typed, recoverable condition: the
//!   log recovers to the last whole record and **never panics** (the
//!   satellite contract, swept by proptest below).

use proptest::prelude::*;
use ses_core::testkit::small_instance;
use ses_core::{EventId, IntervalId, SchedulerSpec, UserId};
use ses_durable::{
    recover_sessions, FsyncPolicy, RecoveredLog, SessionJournal, ShardWal, WalConfig, HEADER_LEN,
};
use ses_service::{
    Announcement, Arrival, Availability, Cancellation, CapacityChange, InstanceName,
    InstanceRegistry, SchedulerService, SessionEvent, SessionOpen,
};
use std::path::PathBuf;

/// A scratch directory under the OS temp dir, wiped on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("ses-durable-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_request(name: &str) -> SessionOpen {
    SessionOpen {
        name: name.to_owned(),
        spec: SchedulerSpec::Greedy,
        k: 4,
        threads: 0,
        instance: InstanceName::default(),
    }
}

/// A deterministic mixed event stream, valid for `small_instance` (6
/// events, 3 intervals, 8 users) but deliberately including events the
/// service answers with `applied: false` or rejects — replay must treat
/// them identically.
fn event_stream(n: usize) -> Vec<SessionEvent> {
    (0..n)
        .map(|i| match i % 6 {
            0 => SessionEvent::SetAvailable(Availability {
                event: EventId::new((i % 6) as u32),
                available: i % 2 == 0,
            }),
            1 => SessionEvent::Capacity(CapacityChange {
                budget: 2.0 + (i % 5) as f64,
            }),
            2 => SessionEvent::Cancel(Cancellation {
                event: EventId::new((i % 6) as u32),
            }),
            3 => SessionEvent::Arrive(Arrival {
                event: EventId::new(((i + 3) % 6) as u32),
            }),
            4 => SessionEvent::Announce(Announcement {
                interval: IntervalId::new((i % 3) as u32),
                postings: vec![(UserId::new((i % 8) as u32), 0.4), (UserId::new(0), 0.2)],
            }),
            _ => SessionEvent::Extend,
        })
        .collect()
}

fn registry() -> InstanceRegistry {
    let reg = InstanceRegistry::new();
    reg.register("default", small_instance(7));
    reg
}

fn wal_config(dir: &std::path::Path) -> WalConfig {
    WalConfig {
        dir: dir.to_path_buf(),
        fsync: FsyncPolicy::Off,
        snapshot_every: 0,
        segment_bytes: 4 << 20,
    }
}

/// Appends opens/events/closes and reopens the directory: the recovered
/// log must list exactly the live sessions with their full event history,
/// and the journal mirror must agree with what recovery scans from disk.
#[test]
fn reopen_reconstructs_live_sessions_exactly() {
    let scratch = Scratch::new("reopen");
    let events = event_stream(9);
    {
        let (mut wal, log) = ShardWal::open(wal_config(scratch.path())).expect("fresh open");
        assert!(log.sessions.is_empty());
        wal.append_open(&open_request("a")).expect("open a");
        wal.append_open(&open_request("b")).expect("open b");
        for e in &events {
            wal.append_event("a", e).expect("event a");
        }
        wal.append_event("b", &events[0]).expect("event b");
        // A rejected duplicate open and an event for an unknown session
        // leave records behind; recovery must skip both.
        wal.append_open(&open_request("a")).expect("dup open");
        wal.append_event("ghost", &events[1]).expect("ghost event");
        wal.append_close("b").expect("close b");
        assert_eq!(
            wal.journal("a").expect("journal a").events.len(),
            events.len()
        );
        assert!(wal.journal("b").is_none(), "closed session leaves mirror");
        wal.flush().expect("flush");
    }
    let (wal, log) = ShardWal::open(wal_config(scratch.path())).expect("reopen");
    assert_eq!(log.sessions.len(), 1, "only 'a' is live");
    let a = &log.sessions[0];
    assert_eq!(a.name, "a");
    assert_eq!(a.open, open_request("a"));
    assert!(a.snapshot_events.is_empty());
    assert_eq!(a.tail_events, events);
    assert_eq!(a.snapshot_lsn, 0);
    // Dup open counts as covered (not skipped); the ghost event is skipped.
    assert_eq!(log.records_skipped, 1);
    assert!(log.torn_tail.is_none());
    assert!(log.scan_errors.is_empty());
    let stats = wal.stats();
    assert_eq!(stats.sessions, 1);
    assert_eq!(stats.last_lsn, log.max_lsn);
    assert_eq!(
        wal.journal("a").expect("mirror survives reopen").events,
        events
    );
}

/// Recovery through a real `SchedulerService` rebuilds the session's
/// report bit-for-bit: utility Ω, schedule size, events applied, clock.
#[test]
fn recovery_through_service_is_bit_identical_replay() {
    let scratch = Scratch::new("replay");
    let reg = registry();
    let inst = reg.get("default").expect("instance");
    let open = open_request("live");
    let events = event_stream(24);

    // Arm A: the "pre-crash" server — log first, then apply.
    let mut live = SchedulerService::new();
    let (mut wal, _) = ShardWal::open(wal_config(scratch.path())).expect("fresh open");
    wal.append_open(&open).expect("log open");
    live.open_session(&inst, &open).expect("open");
    for e in &events {
        wal.append_event("live", e).expect("log event");
        let _ = live.apply("live", e);
    }
    wal.flush().expect("flush");
    let before = live.report("live").expect("report");
    drop(wal);

    // Arm B: recovery after a clean kill.
    let (_wal, log) = ShardWal::open(wal_config(scratch.path())).expect("reopen");
    let mut recovered = SchedulerService::new();
    let report = recover_sessions(&mut recovered, &reg, &log);
    assert_eq!(report.sessions_recovered, 1, "errors: {:?}", report.errors);
    assert_eq!(report.sessions_failed, 0);
    assert_eq!(
        report.events_replayed + report.events_rejected,
        events.len() as u64
    );
    let after = recovered.report("live").expect("recovered report");
    assert_eq!(after.utility.to_bits(), before.utility.to_bits());
    assert_eq!(after.scheduled, before.scheduled);
    assert_eq!(after.events_applied, before.events_applied);
    assert_eq!(after.clock, before.clock);
    assert_eq!(after.budget.to_bits(), before.budget.to_bits());
}

/// With snapshots enabled and tiny segments, old segments get truncated,
/// and reopening from snapshot + tail still replays to the same state.
#[test]
fn snapshots_compact_and_truncate_without_changing_replay() {
    let scratch = Scratch::new("snapshot");
    let reg = registry();
    let inst = reg.get("default").expect("instance");
    let open = open_request("snappy");
    let events = event_stream(40);

    let cfg = WalConfig {
        dir: scratch.path().to_path_buf(),
        fsync: FsyncPolicy::Off,
        snapshot_every: 8,
        segment_bytes: 1024, // force frequent rotation
    };
    let mut live = SchedulerService::new();
    let (mut wal, _) = ShardWal::open(cfg.clone()).expect("fresh open");
    wal.append_open(&open).expect("log open");
    live.open_session(&inst, &open).expect("open");
    let mut snapshots_taken = 0u64;
    for e in &events {
        wal.append_event("snappy", e).expect("log event");
        let _ = live.apply("snappy", e);
        let report = live.report("snappy").expect("report");
        if wal
            .maybe_snapshot("snappy", report.scheduled, report.utility)
            .expect("maybe snapshot")
            .is_some()
        {
            snapshots_taken += 1;
        }
    }
    wal.flush().expect("flush");
    let before = live.report("snappy").expect("report");
    let stats = wal.stats();
    assert!(snapshots_taken >= 2, "snapshots: {snapshots_taken}");
    assert_eq!(stats.snapshots, snapshots_taken);
    assert!(
        stats.segments_removed > 0,
        "tiny segments + snapshots must truncate, stats: {stats:?}"
    );
    drop(wal);

    let (_wal, log) = ShardWal::open(cfg).expect("reopen");
    assert_eq!(log.sessions.len(), 1);
    let s = &log.sessions[0];
    assert!(s.snapshot_lsn > 0, "recovery must find the snapshot");
    assert!(
        !s.snapshot_events.is_empty(),
        "snapshot carries the compacted prefix"
    );
    assert_eq!(
        s.snapshot_events.len() + s.tail_events.len(),
        events.len(),
        "snapshot prefix + WAL tail cover every event exactly once"
    );
    let mut recovered = SchedulerService::new();
    let report = recover_sessions(&mut recovered, &reg, &log);
    assert_eq!(report.sessions_recovered, 1, "errors: {:?}", report.errors);
    assert!(
        report.check_failures.is_empty(),
        "snapshot integrity checks must pass: {:?}",
        report.check_failures
    );
    let after = recovered.report("snappy").expect("recovered report");
    assert_eq!(after.utility.to_bits(), before.utility.to_bits());
    assert_eq!(after.scheduled, before.scheduled);
    assert_eq!(after.events_applied, before.events_applied);
}

/// A tampered snapshot (flipped utility bits) recovers the session anyway
/// but surfaces a typed integrity-check failure in the report.
#[test]
fn tampered_snapshot_check_is_reported_not_fatal() {
    let scratch = Scratch::new("tamper-snap");
    let reg = registry();
    let inst = reg.get("default").expect("instance");
    let open = open_request("s");
    let cfg = WalConfig {
        dir: scratch.path().to_path_buf(),
        fsync: FsyncPolicy::Off,
        snapshot_every: 4,
        segment_bytes: 4 << 20,
    };
    let mut live = SchedulerService::new();
    let (mut wal, _) = ShardWal::open(cfg.clone()).expect("fresh open");
    wal.append_open(&open).expect("log open");
    live.open_session(&inst, &open).expect("open");
    for e in event_stream(6) {
        wal.append_event("s", &e).expect("log event");
        let _ = live.apply("s", &e);
        let report = live.report("s").expect("report");
        // Lie about the utility: the snapshot records a wrong bit pattern.
        wal.maybe_snapshot("s", report.scheduled, report.utility + 1.0)
            .expect("maybe snapshot");
    }
    wal.flush().expect("flush");
    drop(wal);

    let (_wal, log) = ShardWal::open(cfg).expect("reopen");
    let mut recovered = SchedulerService::new();
    let report = recover_sessions(&mut recovered, &reg, &log);
    assert_eq!(report.sessions_recovered, 1);
    assert!(
        !report.check_failures.is_empty(),
        "the lie must be caught: {report:?}"
    );
    assert!(recovered.report("s").is_ok(), "session is still live");
}

/// Extract on one WAL + install on another moves the session: the source
/// recovery no longer lists it, the target replays it to identical state.
#[test]
fn extract_install_moves_a_session_between_wals() {
    let scratch_a = Scratch::new("migrate-src");
    let scratch_b = Scratch::new("migrate-dst");
    let reg = registry();
    let inst = reg.get("default").expect("instance");
    let open = open_request("mover");
    let events = event_stream(15);

    let mut live = SchedulerService::new();
    let (mut wal_a, _) = ShardWal::open(wal_config(scratch_a.path())).expect("open a");
    wal_a.append_open(&open).expect("log open");
    live.open_session(&inst, &open).expect("open");
    for e in &events {
        wal_a.append_event("mover", e).expect("log event");
        let _ = live.apply("mover", e);
    }
    let before = live.report("mover").expect("report");

    let journal: SessionJournal = wal_a
        .extract("mover")
        .expect("extract io")
        .expect("session was live");
    assert_eq!(journal.events, events);
    assert!(wal_a.journal("mover").is_none());

    let (mut wal_b, _) = ShardWal::open(wal_config(scratch_b.path())).expect("open b");
    wal_b.install(&journal).expect("install");
    drop(wal_a);
    drop(wal_b);

    // Source shard: the close record wins; nothing to recover.
    let (_w, log_a) = ShardWal::open(wal_config(scratch_a.path())).expect("reopen a");
    assert!(log_a.sessions.is_empty(), "source must not resurrect");

    // Target shard: full replay to the same state.
    let (_w, log_b) = ShardWal::open(wal_config(scratch_b.path())).expect("reopen b");
    assert_eq!(log_b.sessions.len(), 1);
    let mut recovered = SchedulerService::new();
    let report = recover_sessions(&mut recovered, &reg, &log_b);
    assert_eq!(report.sessions_recovered, 1, "errors: {:?}", report.errors);
    let after = recovered.report("mover").expect("recovered report");
    assert_eq!(after.utility.to_bits(), before.utility.to_bits());
    assert_eq!(after.scheduled, before.scheduled);
    assert_eq!(after.events_applied, before.events_applied);
}

/// Builds one shard-WAL directory with `n` events and returns the live
/// segment's path plus the byte offsets at which each whole record ends
/// (so the sweep below can truncate at record boundaries and inside them).
fn seeded_wal(dir: &std::path::Path, n: usize) -> PathBuf {
    let (mut wal, _) = ShardWal::open(wal_config(dir)).expect("fresh open");
    wal.append_open(&open_request("t")).expect("open");
    for e in event_stream(n) {
        wal.append_event("t", &e).expect("event");
    }
    wal.flush().expect("flush");
    dir.join("seg-00000000.wal")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The satellite contract: truncate the segment anywhere — recovery
    /// never panics, reports a typed torn tail (when the cut lands inside
    /// a record), and recovers exactly the whole-record prefix.
    #[test]
    fn truncated_tail_recovers_cleanly_at_every_cut(n in 1usize..8, cut in 0u64..4096) {
        let scratch = Scratch::new(&format!("torn-{n}-{cut}"));
        let seg = seeded_wal(scratch.path(), n);
        let full = std::fs::metadata(&seg).expect("metadata").len();
        let cut = cut.min(full);
        let f = std::fs::OpenOptions::new().write(true).open(&seg).expect("open seg");
        f.set_len(cut).expect("truncate");
        drop(f);

        let (_wal, log) = ShardWal::open(wal_config(scratch.path()))
            .expect("reopen after truncation must not error");
        if cut < full && cut >= HEADER_LEN {
            // Some suffix was lost: either a clean record boundary (fewer
            // events, no torn tail) or a mid-record cut (torn tail set).
            let events = log.sessions.first().map_or(0, |s| s.tail_events.len());
            prop_assert!(events <= n, "recovered {events} of {n}");
            if log.torn_tail.is_none() {
                // Boundary cut: the file is now a clean shorter log.
                prop_assert!(log.max_lsn <= (n as u64) + 1);
            }
        } else if cut < HEADER_LEN {
            // Header gone: the segment is unreadable, moved aside; the
            // error is typed, recovery proceeds with nothing.
            prop_assert!(log.sessions.is_empty());
            prop_assert!(!log.scan_errors.is_empty());
        }
        // Reopening once more must see a consistent (already-repaired) log.
        drop(_wal);
        let (_wal2, log2) = ShardWal::open(wal_config(scratch.path()))
            .expect("second reopen is clean");
        prop_assert!(log2.torn_tail.is_none(), "repair is sticky: {:?}", log2.torn_tail);
        prop_assert_eq!(log2.sessions.len(), log.sessions.len());
    }

    /// Flip any single byte after the header: recovery never panics, and
    /// either the flip lands in the lost suffix (torn tail truncated /
    /// moved aside) or recovery still yields a prefix of the original
    /// event stream.
    #[test]
    fn bit_flips_never_panic_and_keep_a_clean_prefix(
        n in 1usize..6,
        byte in HEADER_LEN..2048u64,
        bit in 0u8..8,
    ) {
        let scratch = Scratch::new(&format!("flip-{n}-{byte}-{bit}"));
        let seg = seeded_wal(scratch.path(), n);
        let mut bytes = std::fs::read(&seg).expect("read seg");
        // Fold the generated offset into the record region of the file.
        let base = HEADER_LEN as usize;
        let byte = base + (byte as usize - base) % (bytes.len() - base);
        bytes[byte] ^= 1 << bit;
        std::fs::write(&seg, &bytes).expect("write flipped");

        let (_wal, log) = ShardWal::open(wal_config(scratch.path()))
            .expect("reopen after bit flip must not error");
        let original = event_stream(n);
        if let Some(s) = log.sessions.first() {
            // Whatever survived is a strict prefix of what was written —
            // a flip can cost us the tail, never alter an accepted event.
            prop_assert!(s.tail_events.len() <= n);
            prop_assert_eq!(
                s.tail_events.as_slice(),
                &original[..s.tail_events.len()],
                "accepted events must be unaltered"
            );
        }
        prop_assert!(
            log.torn_tail.is_some() || !log.scan_errors.is_empty() || log.records_skipped > 0
                || log.sessions.first().is_some_and(|s| s.tail_events.len() == n),
            "a flip that changed bytes must be detected or fully covered: {log:?}"
        );
    }
}

/// `RecoveredLog` default is empty (used by the no-WAL server path).
#[test]
fn recovered_log_default_is_empty() {
    let log = RecoveredLog::default();
    assert!(log.sessions.is_empty());
    assert_eq!(log.max_lsn, 0);
}
