//! Property tests of the online repair invariants, driven by simulator
//! streams (ISSUE 1 satellite): across random instances, seeds and
//! workloads,
//!
//! * every repair recovers utility (`recovered() ≥ 0` up to float slack) —
//!   a repair pass only ever applies strictly improving or score-positive
//!   moves;
//! * for streams that never inject dynamic competing mass, the engine's
//!   running Ω stays in lockstep with `evaluate_schedule` recomputed from
//!   scratch after every disruption;
//! * the schedule stays feasible (locations unique per interval, per-interval
//!   resource usage within the *live* budget) at all times.

use proptest::prelude::*;
use ses_core::engine::evaluate_schedule;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{GreedyScheduler, IntervalId, OnlineSession, Scheduler};
use ses_sim::{
    scenario_by_name, Disruption, Scenario, SimView, Simulator, TimedDisruption, SCENARIO_NAMES,
};

fn instance_config() -> impl Strategy<Value = TestInstanceConfig> {
    (
        10usize..60,  // users
        4usize..16,   // events
        2usize..8,    // intervals
        0usize..8,    // competing
        2usize..6,    // locations
        4.0f64..16.0, // theta
        0.1f64..0.6,  // density
        any::<u64>(), // seed
    )
        .prop_map(
            |(
                num_users,
                num_events,
                num_intervals,
                num_competing,
                num_locations,
                theta,
                interest_density,
                seed,
            )| {
                TestInstanceConfig {
                    num_users,
                    num_events,
                    num_intervals,
                    num_competing,
                    num_locations,
                    theta,
                    xi_max: 3.0,
                    interest_density,
                    seed,
                }
            },
        )
}

fn check_feasible(inst: &ses_core::SesInstance, session: &OnlineSession) {
    for t in (0..inst.num_intervals()).map(|t| IntervalId::new(t as u32)) {
        let events = session.schedule().events_at(t);
        let mut locations: Vec<u32> = events
            .iter()
            .map(|&e| inst.event(e).location.raw())
            .collect();
        locations.sort_unstable();
        let len_before = locations.len();
        locations.dedup();
        assert_eq!(len_before, locations.len(), "location clash at {t}");
        let used: f64 = events
            .iter()
            .map(|&e| inst.event(e).required_resources)
            .sum();
        assert!(
            used <= session.budget() + 1e-9,
            "interval {t} over live budget: {used} > {}",
            session.budget()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every repair recovers (or at least does not worsen) the disrupted
    /// utility, on every built-in workload.
    #[test]
    fn repairs_recover_on_every_builtin_workload(cfg in instance_config(), k_frac in 0.3f64..1.0) {
        let inst = random_instance(&cfg);
        let k = ((inst.num_events() as f64 * k_frac) as usize).max(1).min(inst.num_events());
        let plan = GreedyScheduler::new().run(&inst, k).unwrap();
        for name in SCENARIO_NAMES {
            let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
            let mut sim = Simulator::new(session, vec![scenario_by_name(name, cfg.seed).unwrap()]);
            sim.withhold_fraction(0.3);
            let summary = sim.run(120);
            prop_assert!(summary.final_utility.is_finite() && summary.final_utility >= -1e-9);
            for r in sim.trace().records() {
                prop_assert!(
                    r.recovered() >= -1e-9,
                    "{name}: step {} lost utility in repair ({} -> {})",
                    r.step, r.utility_disrupted, r.utility_after
                );
                prop_assert!(
                    r.utility_after.is_finite() && r.utility_after >= -1e-9,
                    "{name}: utility went bad at step {}", r.step
                );
            }
            check_feasible(&inst, sim.session());
        }
    }

    /// With no dynamic competing mass in the stream, the engine's running Ω
    /// after every repair equals `evaluate_schedule` from scratch.
    #[test]
    fn static_streams_match_reference_evaluation(cfg in instance_config(), churn_seed in any::<u64>()) {
        /// Cancels, extends, late arrivals and capacity swings — everything
        /// except rival mass, so the reference evaluator stays applicable.
        struct StaticChurn {
            n: u64,
            seed: u64,
        }
        impl Scenario for StaticChurn {
            fn name(&self) -> &'static str { "static-churn" }
            fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
                self.n += 1;
                let roll = (self.n.wrapping_mul(self.seed | 1).wrapping_mul(0x9E3779B97F4A7C15) >> 56) % 5;
                let disruption = match roll {
                    0 => match view.scheduled_events().first().copied() {
                        Some(event) => Disruption::Cancel { event },
                        None => Disruption::Extend,
                    },
                    1 => Disruption::Extend,
                    2 => match view.withheld_events().first().copied() {
                        Some(event) => Disruption::LateArrival { event },
                        None => Disruption::Extend,
                    },
                    3 => Disruption::CapacityChange {
                        budget: view.base_budget() * 0.5,
                    },
                    _ => Disruption::CapacityChange {
                        budget: view.base_budget(),
                    },
                };
                Some(TimedDisruption { at: now + 1, disruption })
            }
        }

        let inst = random_instance(&cfg);
        let k = (inst.num_events() / 2).max(1);
        let plan = GreedyScheduler::new().run(&inst, k).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![Box::new(StaticChurn { n: 0, seed: churn_seed })]);
        sim.withhold_fraction(0.4);
        for _ in 0..40 {
            sim.run(1);
            let live = sim.session().utility();
            let reference = evaluate_schedule(&inst, sim.session().schedule()).total_utility;
            prop_assert!(
                (live - reference).abs() < 1e-7,
                "engine {live} vs reference {reference} after {} steps",
                sim.trace().len()
            );
            check_feasible(&inst, sim.session());
        }
    }

    /// Simulation runs are reproducible: same seed, same digest; and the
    /// digest covers the utilities, so equal digests mean equal outcomes.
    #[test]
    fn traces_are_deterministic_per_seed(cfg in instance_config()) {
        let inst = random_instance(&cfg);
        let k = (inst.num_events() / 2).max(1);
        let plan = GreedyScheduler::new().run(&inst, k).unwrap();
        let mut digests = Vec::new();
        let mut finals = Vec::new();
        for _ in 0..2 {
            let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
            let mut sim = Simulator::new(
                session,
                vec![scenario_by_name("steady", cfg.seed).unwrap()],
            );
            sim.withhold_fraction(0.3);
            let summary = sim.run(100);
            digests.push(summary.digest);
            finals.push(summary.final_utility.to_bits());
        }
        prop_assert_eq!(digests[0], digests[1]);
        prop_assert_eq!(finals[0], finals[1]);
    }
}
