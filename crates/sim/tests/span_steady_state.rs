//! Property test: span recording is zero-allocation in steady state.
//!
//! The per-thread span ring is preallocated at first use and never grows —
//! recording a span is a seqlock write into a fixed slot. Driving a full
//! simulator run (announces, cancels, arrivals, capacity swings, all of
//! which record `repair`/`rescore` spans through the engine layers) must
//! therefore leave the ring's capacity bit-identical while its recorded
//! count climbs, and every span recorded under a trace scope must carry
//! that trace.

use proptest::prelude::*;
use ses_core::testkit::{random_instance, TestInstanceConfig};
use ses_core::{GreedyScheduler, OnlineSession, Scheduler};
use ses_sim::{scenario_by_name, Simulator, SCENARIO_NAMES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulator_runs_never_grow_the_span_ring(seed in any::<u64>(), steps in 20u64..120) {
        let inst = random_instance(&TestInstanceConfig {
            num_users: 40,
            num_events: 12,
            num_intervals: 6,
            num_competing: 4,
            num_locations: 4,
            theta: 8.0,
            xi_max: 3.0,
            interest_density: 0.4,
            seed,
        });
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();

        let scenario = SCENARIO_NAMES[(seed % SCENARIO_NAMES.len() as u64) as usize];
        let trace = ses_obs::TraceId::generate();
        let (cap_before, recorded_before) = ses_obs::thread_ring_stats();
        let summary = {
            let _scope = ses_obs::trace_scope(trace);
            let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
            let mut sim = Simulator::new(session, vec![scenario_by_name(scenario, seed).unwrap()]);
            sim.withhold_fraction(0.25);
            sim.run(steps)
        };
        let (cap_after, recorded_after) = ses_obs::thread_ring_stats();

        // Steady state allocates nothing: same ring, same capacity.
        prop_assert_eq!(cap_before, cap_after, "ring capacity changed");
        prop_assert!(
            recorded_after >= recorded_before + summary.applied,
            "{scenario}: {} disruptions applied but only {} spans recorded",
            summary.applied,
            recorded_after - recorded_before
        );

        // Everything recorded in the scope carries the scope's trace.
        let spans = ses_obs::collect_trace(trace);
        prop_assert!(
            spans.len() as u64 >= summary.applied.min(cap_after as u64),
            "{scenario}: applied {} but trace holds {} spans (cap {})",
            summary.applied,
            spans.len(),
            cap_after
        );
        prop_assert!(spans.iter().all(|s| s.trace == trace.raw()));
    }
}
