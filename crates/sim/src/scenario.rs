//! Pluggable workload scenarios.
//!
//! A [`Scenario`] is a deterministic generator of timestamped disruptions:
//! the simulator repeatedly asks it for the *next* event at or after the
//! current tick, merges all sources on its event queue, and applies them in
//! time order. Scenarios may inspect the live schedule through [`SimView`]
//! (e.g. to target the busiest interval) but never mutate it — all state
//! changes flow through the simulator so they land in the trace.
//!
//! # Writing a new workload
//!
//! One impl away, as promised:
//!
//! ```
//! use ses_sim::{Disruption, Scenario, SimView, TimedDisruption};
//!
//! /// Cancels one scheduled event every `period` ticks, forever.
//! struct Grinder { period: u64 }
//!
//! impl Scenario for Grinder {
//!     fn name(&self) -> &'static str { "grinder" }
//!
//!     fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
//!         let event = view.scheduled_events().first().copied()?;
//!         Some(TimedDisruption {
//!             at: now + self.period,
//!             disruption: Disruption::Cancel { event },
//!         })
//!     }
//! }
//! ```
//!
//! Determinism contract: draw all randomness from an RNG you seed yourself
//! (e.g. `StdRng::seed_from_u64`), and derive decisions only from `now`,
//! your own state, and the `SimView`. The simulator guarantees it calls
//! `next` in a reproducible order.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ses_core::{EventId, IntervalId, OnlineSession};
use ses_datagen::streams::{drift_postings, rival_postings, RivalProfile};

use crate::disruption::{Disruption, TimedDisruption};

/// A read-only window onto the live session, handed to scenarios.
pub struct SimView<'s> {
    session: &'s OnlineSession,
}

impl<'s> SimView<'s> {
    /// Wraps a session.
    pub(crate) fn new(session: &'s OnlineSession) -> Self {
        Self { session }
    }

    /// Current total utility Ω.
    pub fn utility(&self) -> f64 {
        self.session.utility()
    }

    /// Number of users in the population.
    pub fn num_users(&self) -> usize {
        self.session.instance().num_users()
    }

    /// Number of candidate events.
    pub fn num_events(&self) -> usize {
        self.session.instance().num_events()
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.session.instance().num_intervals()
    }

    /// The instance's original resource budget θ.
    pub fn base_budget(&self) -> f64 {
        self.session.instance().budget()
    }

    /// The session's live budget (after any capacity changes).
    pub fn budget(&self) -> f64 {
        self.session.budget()
    }

    /// Currently scheduled events, in event-id order.
    pub fn scheduled_events(&self) -> Vec<EventId> {
        self.session.schedule().scheduled_events()
    }

    /// Number of scheduled events.
    pub fn scheduled_len(&self) -> usize {
        self.session.schedule().len()
    }

    /// Whether `event` is currently scheduled.
    pub fn is_scheduled(&self, event: EventId) -> bool {
        self.session.schedule().contains(event)
    }

    /// Whether `event` is available to backfills/extensions.
    pub fn is_available(&self, event: EventId) -> bool {
        self.session.is_available(event)
    }

    /// Candidates that are neither scheduled nor available — the late
    /// arrivals a scenario can release.
    pub fn withheld_events(&self) -> Vec<EventId> {
        (0..self.num_events() as u32)
            .map(EventId::new)
            .filter(|&e| !self.is_scheduled(e) && !self.is_available(e))
            .collect()
    }

    /// The interval currently hosting the most scheduled events, if any.
    pub fn busiest_interval(&self) -> Option<IntervalId> {
        self.session
            .schedule()
            .occupied_intervals()
            .max_by_key(|&t| self.session.schedule().events_at(t).len())
    }
}

/// A deterministic source of timestamped disruptions.
pub trait Scenario {
    /// Stable scenario name (recorded in summaries).
    fn name(&self) -> &'static str;

    /// The next disruption at a tick ≥ `now`, or `None` when the source is
    /// exhausted. Called once up front and then once after each of this
    /// scenario's events is applied.
    fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption>;

    /// Whether this workload ever emits [`Disruption::LateArrival`].
    /// Drivers use this to decide if withholding candidates makes sense —
    /// withheld events in a scenario that never releases them are simply
    /// dead weight excluded from every backfill.
    fn releases_late_arrivals(&self) -> bool {
        true
    }
}

fn random_interval(rng: &mut StdRng, view: &SimView<'_>) -> IntervalId {
    IntervalId::new(rng.gen_range(0..view.num_intervals().max(1)) as u32)
}

/// Background traffic: a mixed, memoryless stream of mild rivals,
/// cancellations, extensions, late arrivals and drift, at a constant rate.
///
/// The long-run mix (55% mild rivals, 15% cancels, 15% extends, 10%
/// arrivals, 5% drift) keeps the schedule size roughly stationary, so the
/// session neither starves nor saturates — the steady state its name
/// promises.
pub struct SteadyState {
    rng: StdRng,
}

impl SteadyState {
    /// A steady-state source with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x5710_57a7),
        }
    }
}

impl Scenario for SteadyState {
    fn name(&self) -> &'static str {
        "steady"
    }

    fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
        let at = now + self.rng.gen_range(1..=4u64);
        let roll: f64 = self.rng.gen();
        let disruption = if roll < 0.55 {
            Disruption::RivalAnnounce {
                interval: random_interval(&mut self.rng, view),
                postings: rival_postings(&mut self.rng, view.num_users(), &RivalProfile::mild()),
            }
        } else if roll < 0.70 {
            match view.scheduled_events().choose(&mut self.rng) {
                Some(&event) => Disruption::Cancel { event },
                None => Disruption::Extend,
            }
        } else if roll < 0.85 {
            Disruption::Extend
        } else if roll < 0.95 {
            match view.withheld_events().choose(&mut self.rng) {
                Some(&event) => Disruption::LateArrival { event },
                None => Disruption::Extend,
            }
        } else {
            Disruption::ActivityDrift {
                interval: random_interval(&mut self.rng, view),
                postings: drift_postings(&mut self.rng, view.num_users(), 0.3, 0.1),
            }
        };
        Some(TimedDisruption { at, disruption })
    }
}

/// Flash crowds: long quiet stretches of mild background noise, then a
/// burst — a strong rival lands on the busiest interval every tick for
/// `BURST` ticks, with cancellations at the burst front — followed by a
/// recovery phase of extensions.
pub struct FlashCrowd {
    rng: StdRng,
    period: u64,
    burst: u64,
}

impl FlashCrowd {
    /// A flash-crowd source with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0xf1a5_c07d),
            period: 50,
            burst: 10,
        }
    }
}

impl Scenario for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash-crowd"
    }

    fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
        let at = now + 1;
        let phase = at % self.period;
        let disruption = if phase < self.burst {
            // Burst: hammer the busiest interval; open with a cancellation.
            if phase == 0 {
                match view.scheduled_events().choose(&mut self.rng) {
                    Some(&event) => Disruption::Cancel { event },
                    None => Disruption::Extend,
                }
            } else {
                let interval = view
                    .busiest_interval()
                    .unwrap_or_else(|| random_interval(&mut self.rng, view));
                Disruption::RivalAnnounce {
                    interval,
                    postings: rival_postings(
                        &mut self.rng,
                        view.num_users(),
                        &RivalProfile::strong(),
                    ),
                }
            }
        } else if phase < self.burst + 5 {
            // Recovery: re-grow the schedule — fresh acts arrive in the
            // crowd's wake, alternating with plain extensions.
            if self.rng.gen_bool(0.5) {
                match view.withheld_events().choose(&mut self.rng) {
                    Some(&event) => Disruption::LateArrival { event },
                    None => Disruption::Extend,
                }
            } else {
                Disruption::Extend
            }
        } else {
            // Quiet: sparse mild rivals at random intervals.
            Disruption::RivalAnnounce {
                interval: random_interval(&mut self.rng, view),
                postings: rival_postings(&mut self.rng, view.num_users(), &RivalProfile::mild()),
            }
        };
        Some(TimedDisruption { at, disruption })
    }
}

/// A worst-case adversary: every other tick it drops a blanket rival
/// (full reach, near-maximal interest) exactly on the busiest interval —
/// the tightest sustained pressure the repair loop can face.
pub struct AdversarialRival {
    rng: StdRng,
}

impl AdversarialRival {
    /// An adversarial source with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0xadae_05a1),
        }
    }
}

impl Scenario for AdversarialRival {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    /// Pure rival pressure — no arrivals, ever.
    fn releases_late_arrivals(&self) -> bool {
        false
    }

    fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
        let interval = view
            .busiest_interval()
            .unwrap_or_else(|| random_interval(&mut self.rng, view));
        Some(TimedDisruption {
            at: now + 2,
            disruption: Disruption::RivalAnnounce {
                interval,
                postings: rival_postings(&mut self.rng, view.num_users(), &RivalProfile::blanket()),
            },
        })
    }
}

/// Seasonality: competition intensity follows a sinusoid with period
/// `SEASON` ticks. High season brings strong rivals and a capacity squeeze
/// (θ drops to 70%); low season restores capacity and back-fills with
/// extensions and late arrivals.
pub struct Seasonal {
    rng: StdRng,
    season: u64,
    /// Next half-season tick at which capacity must track the season.
    /// Ticks advance by 1–3, so boundaries are detected by *crossing*
    /// (`at ≥ next_boundary`), never by landing on an exact multiple.
    next_boundary: u64,
}

impl Seasonal {
    /// A seasonal source with its own RNG stream.
    pub fn new(seed: u64) -> Self {
        let season = 120;
        Self {
            rng: StdRng::seed_from_u64(seed ^ 0x5ea5_00a1),
            season,
            next_boundary: season / 2,
        }
    }

    /// Season intensity in `[0, 1]` at tick `at`.
    fn intensity(&self, at: u64) -> f64 {
        let phase = (at % self.season) as f64 / self.season as f64;
        0.5 - 0.5 * (phase * std::f64::consts::TAU).cos()
    }
}

impl Scenario for Seasonal {
    fn name(&self) -> &'static str {
        "seasonal"
    }

    fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
        let at = now + self.rng.gen_range(1..=3u64);
        let intensity = self.intensity(at);
        // Capacity tracks the season at the boundary of each half-phase;
        // fire exactly once per crossing, at the crossing tick.
        let disruption = if at >= self.next_boundary {
            let boundary = self.next_boundary;
            self.next_boundary += self.season / 2;
            // High season (odd half-phases) squeezes θ; low season restores.
            let squeeze = if (boundary / (self.season / 2)) % 2 == 1 {
                0.7
            } else {
                1.0
            };
            return Some(TimedDisruption {
                at: boundary.max(now),
                disruption: Disruption::CapacityChange {
                    budget: view.base_budget() * squeeze,
                },
            });
        } else if self.rng.gen_bool(intensity.clamp(0.05, 0.95)) {
            Disruption::RivalAnnounce {
                interval: random_interval(&mut self.rng, view),
                postings: rival_postings(
                    &mut self.rng,
                    view.num_users(),
                    &RivalProfile::seasonal(intensity),
                ),
            }
        } else if self.rng.gen_bool(0.5) {
            Disruption::Extend
        } else {
            match view.withheld_events().choose(&mut self.rng) {
                Some(&event) => Disruption::LateArrival { event },
                None => Disruption::Extend,
            }
        };
        Some(TimedDisruption { at, disruption })
    }
}

/// Instantiates a built-in scenario by CLI name.
///
/// Accepted names: `steady`, `flash-crowd`, `adversarial`, `seasonal`.
pub fn scenario_by_name(name: &str, seed: u64) -> Option<Box<dyn Scenario>> {
    match name {
        "steady" | "steady-state" => Some(Box::new(SteadyState::new(seed))),
        "flash-crowd" | "flashcrowd" | "flash" => Some(Box::new(FlashCrowd::new(seed))),
        "adversarial" | "adversarial-rival" | "rival" => {
            Some(Box::new(AdversarialRival::new(seed)))
        }
        "seasonal" | "season" => Some(Box::new(Seasonal::new(seed))),
        _ => None,
    }
}

/// The names [`scenario_by_name`] accepts, canonical forms first.
pub const SCENARIO_NAMES: &[&str] = &["steady", "flash-crowd", "adversarial", "seasonal"];
