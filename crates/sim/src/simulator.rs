//! The discrete-event simulator: merges scenario streams on a time-ordered
//! event queue and drives an [`OnlineSession`] through them, recording a
//! trace and throughput counters.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use ses_core::{EngineCounters, EventId, OnlineSession, RepairReport};

use crate::disruption::{Disruption, DisruptionKind};
use crate::scenario::{Scenario, SimView};
use crate::trace::{Trace, TraceRecord};

/// One queued disruption. Ordered by `(at, seq)`; `seq` is a global
/// admission counter, so simultaneous events apply in admission order and
/// the whole run is deterministic.
struct Pending {
    at: u64,
    seq: u64,
    source: usize,
    disruption: Disruption,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// End-of-run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// Disruptions taken off the queue.
    pub steps: u64,
    /// Disruptions that changed session state.
    pub applied: u64,
    /// Disruptions that were inert (cancel of an unscheduled event, …).
    pub skipped: u64,
    /// Simulation tick of the last disruption.
    pub final_tick: u64,
    /// Utility Ω when the run ended.
    pub final_utility: f64,
    /// Schedule size when the run ended.
    pub final_scheduled: usize,
    /// Total events moved or added by repairs.
    pub total_moves: u64,
    /// Σ `recovered()` over all repairs — utility the repair loop clawed back.
    pub total_recovered: f64,
    /// Engine operation counters accumulated during the run (deltas).
    pub counters: EngineCounters,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Disruptions processed per wall-clock second.
    pub events_per_sec: f64,
    /// Determinism digest of the trace (see [`Trace::digest`]).
    pub digest: u64,
}

/// A discrete-event simulation binding scenario streams to a live session.
pub struct Simulator<'a> {
    session: OnlineSession<'a>,
    sources: Vec<Box<dyn Scenario>>,
    primed: Vec<bool>,
    queue: BinaryHeap<Pending>,
    clock: u64,
    seq: u64,
    steps_done: u64,
    trace: Trace,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator over `session` driven by `sources`.
    pub fn new(session: OnlineSession<'a>, sources: Vec<Box<dyn Scenario>>) -> Self {
        let n = sources.len();
        Self {
            session,
            sources,
            primed: vec![false; n],
            queue: BinaryHeap::new(),
            clock: 0,
            seq: 0,
            steps_done: 0,
            trace: Trace::new(),
        }
    }

    /// Withholds every `1/fraction`-ish unscheduled candidate (taking each
    /// with index hash below `fraction`) so scenarios have late arrivals to
    /// release. Deterministic — no RNG involved.
    pub fn withhold_fraction(&mut self, fraction: f64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        let n = self.session.instance().num_events();
        let take =
            |e: usize| (((e.wrapping_mul(2654435761) >> 16) % 1000) as f64) < fraction * 1000.0;
        let mut withheld = 0;
        for e in (0..n).map(|e| EventId::new(e as u32)) {
            if !self.session.schedule().contains(e) && take(e.index()) {
                self.session.set_available(e, false);
                withheld += 1;
            }
        }
        withheld
    }

    /// The live session (read access).
    pub fn session(&self) -> &OnlineSession<'a> {
        &self.session
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the session for post-inspection.
    pub fn into_session(self) -> OnlineSession<'a> {
        self.session
    }

    /// Asks source `i` for its next event and queues it.
    fn refill(&mut self, i: usize) {
        let view = SimView::new(&self.session);
        if let Some(timed) = self.sources[i].next(self.clock, &view) {
            let at = timed.at.max(self.clock);
            self.queue.push(Pending {
                at,
                seq: self.seq,
                source: i,
                disruption: timed.disruption,
            });
            self.seq += 1;
        }
    }

    /// Applies one disruption to the session. Returns the repair report if
    /// the session changed.
    fn apply(&mut self, disruption: &Disruption) -> Option<RepairReport> {
        match disruption {
            Disruption::RivalAnnounce { interval, postings }
            | Disruption::ActivityDrift { interval, postings } => {
                Some(self.session.announce_competing(*interval, postings))
            }
            Disruption::Cancel { event } => self.session.cancel_event(*event).ok(),
            Disruption::LateArrival { event } => self.session.arrive(*event),
            Disruption::Extend => self.session.extend(),
            Disruption::CapacityChange { budget } => Some(self.session.change_capacity(*budget)),
        }
    }

    /// Runs up to `steps` further disruptions (fewer if all sources dry up).
    /// Can be called repeatedly; the clock, trace and counters carry over.
    pub fn run(&mut self, steps: u64) -> SimSummary {
        let counters_start = self.session.counters();
        let start = Instant::now();
        let mut applied = 0u64;
        let mut skipped = 0u64;
        let mut total_moves = 0u64;
        let mut total_recovered = 0.0f64;

        for i in 0..self.sources.len() {
            if !self.primed[i] {
                self.primed[i] = true;
                self.refill(i);
            }
        }

        let mut taken = 0u64;
        while taken < steps {
            let Some(pending) = self.queue.pop() else {
                break;
            };
            taken += 1;
            self.clock = pending.at;
            let utility_before = self.session.utility();
            let report = self.apply(&pending.disruption);
            let record = match &report {
                Some(r) => {
                    applied += 1;
                    total_moves += r.moves.len() as u64;
                    total_recovered += r.recovered();
                    TraceRecord {
                        step: self.steps_done,
                        tick: pending.at,
                        kind: pending.disruption.kind(),
                        applied: true,
                        utility_before: r.utility_before,
                        utility_disrupted: r.utility_disrupted,
                        utility_after: r.utility_after,
                        moves: r.moves.len() as u32,
                    }
                }
                None => {
                    skipped += 1;
                    TraceRecord {
                        step: self.steps_done,
                        tick: pending.at,
                        kind: pending.disruption.kind(),
                        applied: false,
                        utility_before,
                        utility_disrupted: utility_before,
                        utility_after: utility_before,
                        moves: 0,
                    }
                }
            };
            self.trace.push(record);
            self.steps_done += 1;
            self.refill(pending.source);
        }

        let elapsed = start.elapsed();
        let counters_end = self.session.counters();
        let events_per_sec = if elapsed.as_secs_f64() > 0.0 {
            taken as f64 / elapsed.as_secs_f64()
        } else {
            f64::INFINITY
        };
        SimSummary {
            steps: taken,
            applied,
            skipped,
            final_tick: self.clock,
            final_utility: self.session.utility(),
            final_scheduled: self.session.schedule().len(),
            total_moves,
            total_recovered,
            counters: EngineCounters {
                score_evaluations: counters_end.score_evaluations
                    - counters_start.score_evaluations,
                posting_visits: counters_end.posting_visits - counters_start.posting_visits,
                assigns: counters_end.assigns - counters_start.assigns,
                unassigns: counters_end.unassigns - counters_start.unassigns,
            },
            elapsed,
            events_per_sec,
            digest: self.trace.digest(),
        }
    }

    /// A per-kind histogram of the trace, for reports.
    pub fn kind_histogram(&self) -> Vec<(DisruptionKind, u64)> {
        let kinds = [
            DisruptionKind::RivalAnnounce,
            DisruptionKind::ActivityDrift,
            DisruptionKind::Cancel,
            DisruptionKind::LateArrival,
            DisruptionKind::Extend,
            DisruptionKind::CapacityChange,
        ];
        kinds
            .iter()
            .map(|&k| {
                (
                    k,
                    self.trace.records().iter().filter(|r| r.kind == k).count() as u64,
                )
            })
            .collect()
    }
}
