//! The discrete-event simulator: merges scenario streams on a time-ordered
//! event queue and replays them against a named session of a
//! [`SchedulerService`], recording a trace and throughput counters.
//!
//! The simulator never touches an [`OnlineSession`] mutably — every
//! disruption is converted to a [`ses_service::SessionEvent`] and applied
//! through [`SchedulerService::apply`], the same request path the CLI and
//! any server front end use. What the simulator measures is therefore the
//! serving stack, not a private shortcut around it.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use serde::Serialize;
use ses_core::{EngineCounters, EventId, OnlineSession, RepairReport};
use ses_service::{Availability, SchedulerService, ServiceError, SessionEvent};

use crate::disruption::{Disruption, DisruptionKind, TimedDisruption};
use crate::scenario::{Scenario, SimView};
use crate::trace::{Trace, TraceRecord};

/// One queued disruption. Ordered by `(at, seq)`; `seq` is a global
/// admission counter, so simultaneous events apply in admission order and
/// the whole run is deterministic.
struct Pending {
    at: u64,
    seq: u64,
    source: usize,
    disruption: Disruption,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// End-of-run report.
///
/// Serializes for `--format json` front ends; the wall-clock [`Duration`]
/// is skipped (report `events_per_sec` / recompute milliseconds from it
/// before serializing if needed).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimSummary {
    /// Disruptions taken off the queue.
    pub steps: u64,
    /// Disruptions that changed session state.
    pub applied: u64,
    /// Disruptions that were inert (cancel of an unscheduled event, …).
    pub skipped: u64,
    /// Disruptions the service *rejected* (out-of-universe references, bad
    /// values) — always 0 for well-formed scenarios. Counted inside
    /// `skipped`, but broken out so a buggy scenario cannot hide behind
    /// ordinary inert steps.
    pub rejected: u64,
    /// Simulation tick of the last disruption.
    pub final_tick: u64,
    /// Utility Ω when the run ended.
    pub final_utility: f64,
    /// Schedule size when the run ended.
    pub final_scheduled: usize,
    /// Total events moved or added by repairs.
    pub total_moves: u64,
    /// Σ `recovered()` over all repairs — utility the repair loop clawed back.
    pub total_recovered: f64,
    /// Engine operation counters accumulated during the run (deltas).
    pub counters: EngineCounters,
    /// Wall-clock duration of the run.
    #[serde(skip)]
    pub elapsed: Duration,
    /// Disruptions processed per wall-clock second.
    pub events_per_sec: f64,
    /// Determinism digest of the trace (see [`Trace::digest`]).
    pub digest: u64,
}

/// The session name [`Simulator::new`] opens in its internal service.
pub const DEFAULT_SESSION: &str = "sim";

/// A discrete-event simulation binding scenario streams to a named service
/// session.
pub struct Simulator {
    service: SchedulerService,
    name: String,
    sources: Vec<Box<dyn Scenario>>,
    primed: Vec<bool>,
    queue: BinaryHeap<Pending>,
    clock: u64,
    seq: u64,
    steps_done: u64,
    rejected: u64,
    trace: Trace,
    /// When set, every disruption taken off the queue is also appended
    /// here (in apply order, with its tick) so the exact stream can be
    /// replayed through another front end — e.g. over a network server —
    /// and the two traces compared digest-for-digest.
    recording: Option<Vec<TimedDisruption>>,
}

impl Simulator {
    /// Builds a simulator over `session` driven by `sources`, adopting the
    /// session into a fresh internal service as [`DEFAULT_SESSION`].
    pub fn new(session: OnlineSession, sources: Vec<Box<dyn Scenario>>) -> Self {
        let mut service = SchedulerService::new();
        service
            .adopt_session(DEFAULT_SESSION, session)
            .expect("fresh service has no sessions");
        Self::over_service(service, DEFAULT_SESSION, sources)
            .expect("session was just adopted under this name")
    }

    /// Builds a simulator over an already open session of an existing
    /// service — the path drivers take when the session was opened through
    /// the service API ([`ses_service::SessionOpen`]). Fails if no session
    /// with that name is open.
    pub fn over_service(
        service: SchedulerService,
        name: impl Into<String>,
        sources: Vec<Box<dyn Scenario>>,
    ) -> Result<Self, ServiceError> {
        let name = name.into();
        if service.session(&name).is_none() {
            return Err(ServiceError::UnknownSession(name));
        }
        let n = sources.len();
        Ok(Self {
            service,
            name,
            sources,
            primed: vec![false; n],
            queue: BinaryHeap::new(),
            clock: 0,
            seq: 0,
            steps_done: 0,
            rejected: 0,
            trace: Trace::new(),
            recording: None,
        })
    }

    /// Starts (or stops) recording the applied disruption stream. Recorded
    /// streams come back through [`Self::take_recorded`]; replaying one
    /// against an identically-initialized session — through any front end
    /// that drives [`SchedulerService::apply`] — reproduces this run's
    /// trace bit for bit.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = if on {
            Some(self.recording.take().unwrap_or_default())
        } else {
            None
        };
    }

    /// Takes the disruptions recorded since [`Self::set_recording`] was
    /// switched on (empty if recording was never enabled).
    pub fn take_recorded(&mut self) -> Vec<TimedDisruption> {
        self.recording
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Withholds every `1/fraction`-ish unscheduled candidate (taking each
    /// with index hash below `fraction`) so scenarios have late arrivals to
    /// release. Deterministic — no RNG involved. Goes through the service's
    /// availability events like every other state change.
    ///
    /// Returns the candidates it withheld, in id order — replay drivers
    /// send exactly this set through other front ends (the server's
    /// determinism check), so there is one source of truth, not two
    /// computations that must happen to agree.
    pub fn withhold_fraction(&mut self, fraction: f64) -> Vec<EventId> {
        let selection = withhold_selection(self.session(), fraction);
        for &e in &selection {
            self.service
                .apply(
                    &self.name,
                    &SessionEvent::SetAvailable(Availability {
                        event: e,
                        available: false,
                    }),
                )
                .expect("event id is in bounds");
        }
        selection
    }

    /// The live session (read access).
    pub fn session(&self) -> &OnlineSession {
        self.service
            .session(&self.name)
            .expect("simulator session stays open for its lifetime")
    }

    /// The service the simulator drives (read access — e.g. for
    /// [`ses_service::SchedulerService::report`]).
    pub fn service(&self) -> &SchedulerService {
        &self.service
    }

    /// The name of the session this simulator drives.
    pub fn session_name(&self) -> &str {
        &self.name
    }

    /// The trace accumulated so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning the session for post-inspection.
    pub fn into_session(mut self) -> OnlineSession {
        self.service
            .take_session(&self.name)
            .expect("simulator session stays open for its lifetime")
    }

    /// Consumes the simulator, returning the service (with the session
    /// still open under [`Self::session_name`]).
    pub fn into_service(self) -> SchedulerService {
        self.service
    }

    /// Asks source `i` for its next event and queues it.
    fn refill(&mut self, i: usize) {
        let session = self
            .service
            .session(&self.name)
            .expect("simulator session stays open for its lifetime");
        let view = SimView::new(session);
        if let Some(timed) = self.sources[i].next(self.clock, &view) {
            let at = timed.at.max(self.clock);
            self.queue.push(Pending {
                at,
                seq: self.seq,
                source: i,
                disruption: timed.disruption,
            });
            self.seq += 1;
        }
    }

    /// Applies one disruption through the service. Returns the repair
    /// report if the session changed.
    ///
    /// Well-formed scenarios only emit in-universe events, so a
    /// service-level rejection marks a scenario bug. The step is recorded
    /// as inert (nothing changed, so the trace stays honest and the run
    /// deterministic), but it also bumps [`SimSummary::rejected`] so the
    /// bug cannot hide among ordinary inert steps.
    fn apply(&mut self, disruption: &Disruption) -> Option<RepairReport> {
        match self
            .service
            .apply(&self.name, &disruption.to_session_event())
        {
            Ok(report) => report.report,
            Err(_) => {
                self.rejected += 1;
                None
            }
        }
    }

    /// Runs up to `steps` further disruptions (fewer if all sources dry up).
    /// Can be called repeatedly; the clock, trace and counters carry over.
    pub fn run(&mut self, steps: u64) -> SimSummary {
        let counters_start = self.session().counters();
        let rejected_start = self.rejected;
        // ses-analyze: allow(wall-clock-in-core): elapsed feeds SimSummary throughput reporting only, never decisions
        let start = Instant::now();
        let mut applied = 0u64;
        let mut skipped = 0u64;
        let mut total_moves = 0u64;
        let mut total_recovered = 0.0f64;

        for i in 0..self.sources.len() {
            if !self.primed[i] {
                self.primed[i] = true;
                self.refill(i);
            }
        }

        let mut taken = 0u64;
        while taken < steps {
            let Some(pending) = self.queue.pop() else {
                break;
            };
            taken += 1;
            if let Some(rec) = &mut self.recording {
                rec.push(TimedDisruption {
                    at: pending.at,
                    disruption: pending.disruption.clone(),
                });
            }
            self.clock = pending.at;
            let utility_before = self.session().utility();
            let report = self.apply(&pending.disruption);
            let record = match &report {
                Some(r) => {
                    applied += 1;
                    total_moves += r.moves.len() as u64;
                    total_recovered += r.recovered();
                    TraceRecord {
                        step: self.steps_done,
                        tick: pending.at,
                        kind: pending.disruption.kind(),
                        applied: true,
                        utility_before: r.utility_before,
                        utility_disrupted: r.utility_disrupted,
                        utility_after: r.utility_after,
                        moves: r.moves.len() as u32,
                    }
                }
                None => {
                    skipped += 1;
                    TraceRecord {
                        step: self.steps_done,
                        tick: pending.at,
                        kind: pending.disruption.kind(),
                        applied: false,
                        utility_before,
                        utility_disrupted: utility_before,
                        utility_after: utility_before,
                        moves: 0,
                    }
                }
            };
            self.trace.push(record);
            self.steps_done += 1;
            self.refill(pending.source);
        }

        let elapsed = start.elapsed();
        let counters_end = self.session().counters();
        let events_per_sec = if elapsed.as_secs_f64() > 0.0 {
            taken as f64 / elapsed.as_secs_f64()
        } else {
            f64::INFINITY
        };
        SimSummary {
            steps: taken,
            applied,
            skipped,
            rejected: self.rejected - rejected_start,
            final_tick: self.clock,
            final_utility: self.session().utility(),
            final_scheduled: self.session().schedule().len(),
            total_moves,
            total_recovered,
            counters: EngineCounters {
                score_evaluations: counters_end.score_evaluations
                    - counters_start.score_evaluations,
                posting_visits: counters_end.posting_visits - counters_start.posting_visits,
                assigns: counters_end.assigns - counters_start.assigns,
                unassigns: counters_end.unassigns - counters_start.unassigns,
            },
            elapsed,
            events_per_sec,
            digest: self.trace.digest(),
        }
    }

    /// A per-kind histogram of the trace, for reports.
    pub fn kind_histogram(&self) -> Vec<(DisruptionKind, u64)> {
        let kinds = [
            DisruptionKind::RivalAnnounce,
            DisruptionKind::ActivityDrift,
            DisruptionKind::Cancel,
            DisruptionKind::LateArrival,
            DisruptionKind::Extend,
            DisruptionKind::CapacityChange,
        ];
        kinds
            .iter()
            .map(|&k| {
                (
                    k,
                    self.trace.records().iter().filter(|r| r.kind == k).count() as u64,
                )
            })
            .collect()
    }
}

/// The deterministic withhold selection: every unscheduled candidate whose
/// index hash lands below `fraction`. No RNG — the same session state always
/// selects the same set, which is what lets a network replay reproduce it.
pub fn withhold_selection(session: &OnlineSession, fraction: f64) -> Vec<EventId> {
    let fraction = fraction.clamp(0.0, 1.0);
    let n = session.instance().num_events();
    let take = |e: usize| (((e.wrapping_mul(2654435761) >> 16) % 1000) as f64) < fraction * 1000.0;
    (0..n)
        .map(|e| EventId::new(e as u32))
        .filter(|&e| !session.schedule().contains(e) && take(e.index()))
        .collect()
}
