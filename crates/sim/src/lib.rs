//! # ses-sim — discrete-event workload simulation for the online scheduler
//!
//! The paper schedules once, offline; `ses_core::online` keeps a published
//! schedule healthy under disruptions. This crate closes the loop: it
//! *generates* sustained, realistic streams of disruptions and replays them
//! against an [`OnlineSession`](ses_core::OnlineSession), so the serving
//! behaviour of the repair machinery under traffic is measurable and
//! reproducible.
//!
//! ## Architecture
//!
//! * [`Disruption`] — the vocabulary of world changes: rival announcements,
//!   cancellations, late candidate arrivals, capacity changes, activity
//!   drift, and `k → k+1` extensions;
//! * [`Scenario`] — a pluggable, deterministic generator of
//!   [`TimedDisruption`]s. Four workloads ship built in:
//!   [`SteadyState`], [`FlashCrowd`], [`AdversarialRival`] and [`Seasonal`];
//!   new workloads are one trait impl away (see the `scenario` module docs);
//! * [`Simulator`] — the discrete-event core: merges all scenario streams on
//!   a time-ordered queue, converts each disruption to a
//!   [`ses_service::SessionEvent`] and applies it through
//!   [`ses_service::SchedulerService::apply`] (the same request path the
//!   CLI and any server front end use), and records a [`Trace`];
//! * [`Trace`] / [`SimSummary`] — per-step utility/repair records with a
//!   64-bit determinism digest, plus throughput counters (disruptions/sec
//!   and the engine's hardware-independent
//!   [`EngineCounters`](ses_core::EngineCounters)).
//!
//! ## Determinism
//!
//! Every source of randomness is an explicitly seeded [`rand::rngs::StdRng`];
//! wall-clock time never influences control flow. Two runs with the same
//! instance, schedule, scenario and seed produce bit-identical traces —
//! checked by comparing [`Trace::digest`] values, which is exactly what
//! `ses simulate` does.
//!
//! ## Quick example
//!
//! ```
//! use ses_core::prelude::*;
//! use ses_core::testkit;
//! use ses_sim::{scenario_by_name, Simulator};
//!
//! let inst = testkit::medium_instance(7);
//! let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
//! let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
//!
//! let scenario = scenario_by_name("flash-crowd", 42).unwrap();
//! let mut sim = Simulator::new(session, vec![scenario]);
//! sim.withhold_fraction(0.3); // leave some candidates to arrive late
//! let summary = sim.run(500);
//! assert_eq!(summary.steps, 500);
//! assert!(summary.final_utility >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod disruption;
pub mod scenario;
pub mod simulator;
pub mod trace;

pub use disruption::{Disruption, DisruptionKind, TimedDisruption};
pub use scenario::{
    scenario_by_name, AdversarialRival, FlashCrowd, Scenario, Seasonal, SimView, SteadyState,
    SCENARIO_NAMES,
};
pub use simulator::{withhold_selection, SimSummary, Simulator};
pub use trace::{Trace, TraceRecord};

#[cfg(test)]
mod tests {
    use super::*;
    use ses_core::algorithms::{GreedyScheduler, Scheduler};
    use ses_core::engine::evaluate_schedule;
    use ses_core::testkit;
    use ses_core::OnlineSession;

    fn simulator(
        scenario: &str,
        seed: u64,
    ) -> (std::sync::Arc<ses_core::SesInstance>, Box<dyn Scenario>) {
        let inst = testkit::medium_instance(seed);
        let scn = scenario_by_name(scenario, seed).unwrap();
        (inst, scn)
    }

    fn run_once(scenario: &str, seed: u64, steps: u64) -> (SimSummary, Vec<TraceRecord>) {
        let (inst, scn) = simulator(scenario, seed);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![scn]);
        sim.withhold_fraction(0.4);
        let summary = sim.run(steps);
        (summary, sim.trace().records().to_vec())
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        for scenario in SCENARIO_NAMES {
            let (a, ta) = run_once(scenario, 11, 300);
            let (b, tb) = run_once(scenario, 11, 300);
            assert_eq!(a.digest, b.digest, "{scenario}: digests differ");
            assert_eq!(ta, tb, "{scenario}: traces differ");
            assert_eq!(a.final_utility.to_bits(), b.final_utility.to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let (a, _) = run_once("steady", 1, 200);
        let (b, _) = run_once("steady", 2, 200);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn every_builtin_scenario_sustains_load() {
        for scenario in SCENARIO_NAMES {
            let (summary, records) = run_once(scenario, 5, 400);
            assert_eq!(summary.steps, 400, "{scenario} dried up early");
            assert_eq!(records.len(), 400);
            assert!(summary.final_utility.is_finite() && summary.final_utility >= 0.0);
            assert!(
                summary.counters.score_evaluations > 0,
                "{scenario} never scored"
            );
            // Ticks advance monotonically.
            for w in records.windows(2) {
                assert!(w[0].tick <= w[1].tick, "{scenario}: time ran backwards");
            }
        }
    }

    #[test]
    fn schedule_stays_feasible_throughout() {
        let (inst, scn) = simulator("seasonal", 23);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![scn]);
        for _ in 0..20 {
            sim.run(25);
            let session = sim.session();
            // The instance-level check validates locations and the *original*
            // budget; under a live capacity cut the engine's budget is
            // stricter, so check per-interval usage against it directly.
            for t in (0..inst.num_intervals()).map(|t| ses_core::IntervalId::new(t as u32)) {
                let used: f64 = session
                    .schedule()
                    .events_at(t)
                    .iter()
                    .map(|&e| inst.event(e).required_resources)
                    .sum();
                assert!(
                    used <= session.budget() + 1e-9,
                    "interval {t} over live budget"
                );
            }
        }
    }

    #[test]
    fn static_mass_streams_match_reference_evaluation() {
        // A scenario emitting only schedule-shaped disruptions (no rival
        // mass) must keep the engine's running Ω in lockstep with the
        // from-scratch evaluator.
        struct Churn {
            n: u64,
        }
        impl Scenario for Churn {
            fn name(&self) -> &'static str {
                "churn"
            }
            fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
                self.n += 1;
                let disruption = match self.n % 3 {
                    0 => match view.scheduled_events().first().copied() {
                        Some(event) => Disruption::Cancel { event },
                        None => Disruption::Extend,
                    },
                    1 => Disruption::Extend,
                    _ => Disruption::CapacityChange {
                        budget: view.base_budget()
                            * if self.n.is_multiple_of(2) { 0.5 } else { 1.0 },
                    },
                };
                Some(TimedDisruption {
                    at: now + 1,
                    disruption,
                })
            }
        }

        let inst = testkit::medium_instance(31);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![Box::new(Churn { n: 0 })]);
        for _ in 0..30 {
            sim.run(5);
            let eval = evaluate_schedule(&inst, sim.session().schedule());
            let live = sim.session().utility();
            assert!(
                (eval.total_utility - live).abs() < 1e-7,
                "engine {live} vs reference {}",
                eval.total_utility
            );
        }
    }

    #[test]
    fn seasonal_fires_capacity_changes_at_every_boundary() {
        let inst = testkit::medium_instance(41);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![scenario_by_name("seasonal", 41).unwrap()]);
        let summary = sim.run(600);
        let capacity_events: Vec<u64> = sim
            .trace()
            .records()
            .iter()
            .filter(|r| r.kind == DisruptionKind::CapacityChange)
            .map(|r| r.tick)
            .collect();
        // Ticks advance by 1–3, so 600 steps cover ≥ 600 ticks ≥ 10 full
        // half-seasons (60 ticks each); every crossing must fire exactly one
        // capacity change even though ticks rarely land on the boundary.
        let expected = summary.final_tick / 60;
        assert_eq!(
            capacity_events.len() as u64,
            expected,
            "one capacity change per half-season boundary (final tick {})",
            summary.final_tick
        );
        for pair in capacity_events.windows(2) {
            assert!(pair[1] - pair[0] >= 55, "boundaries ~60 ticks apart");
        }
    }

    #[test]
    fn flash_crowd_releases_withheld_candidates() {
        // Regression: withheld "late arrival" candidates must actually
        // arrive under flash-crowd — recovery phases release them.
        let inst = testkit::medium_instance(47);
        let plan = GreedyScheduler::new().run(&inst, 4).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let scenario = scenario_by_name("flash-crowd", 47).unwrap();
        assert!(scenario.releases_late_arrivals());
        let mut sim = Simulator::new(session, vec![scenario]);
        let withheld = sim.withhold_fraction(1.0);
        assert!(!withheld.is_empty(), "12 events, 4 scheduled");
        sim.run(600);
        let arrivals = sim
            .kind_histogram()
            .into_iter()
            .find(|(k, _)| *k == DisruptionKind::LateArrival)
            .map(|(_, n)| n)
            .unwrap_or(0);
        assert!(arrivals > 0, "recovery phases must release arrivals");
        // Adversarial declares the opposite, so drivers can skip holdback.
        assert!(!scenario_by_name("adversarial", 1)
            .unwrap()
            .releases_late_arrivals());
    }

    #[test]
    fn multiple_sources_merge_on_the_queue() {
        let inst = testkit::medium_instance(3);
        let plan = GreedyScheduler::new().run(&inst, 5).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(
            session,
            vec![
                scenario_by_name("steady", 1).unwrap(),
                scenario_by_name("adversarial", 1).unwrap(),
            ],
        );
        let summary = sim.run(200);
        assert_eq!(summary.steps, 200);
        let hist = sim.kind_histogram();
        let rivals = hist
            .iter()
            .find(|(k, _)| *k == DisruptionKind::RivalAnnounce)
            .unwrap()
            .1;
        assert!(rivals > 50, "both sources should contribute rivals");
    }

    #[test]
    fn repairs_never_lose_ground_on_any_builtin_scenario() {
        for scenario in SCENARIO_NAMES {
            let (_, records) = run_once(scenario, 17, 300);
            for r in &records {
                assert!(
                    r.recovered() >= -1e-9,
                    "{scenario}: repair lost utility at step {}",
                    r.step
                );
            }
        }
    }

    #[test]
    fn service_rejections_are_counted_not_hidden() {
        // A buggy scenario that references events outside the instance's
        // universe: the service rejects each one, the run stays
        // deterministic, and the summary reports the rejections separately
        // from ordinary inert steps.
        struct OffByOne {
            n: u64,
        }
        impl Scenario for OffByOne {
            fn name(&self) -> &'static str {
                "off-by-one"
            }
            fn next(&mut self, now: u64, view: &SimView<'_>) -> Option<TimedDisruption> {
                self.n += 1;
                let disruption = if self.n.is_multiple_of(2) {
                    // Out of universe — a classic off-by-one.
                    Disruption::Cancel {
                        event: ses_core::EventId::new(view.num_events() as u32),
                    }
                } else {
                    Disruption::Extend
                };
                Some(TimedDisruption {
                    at: now + 1,
                    disruption,
                })
            }
        }

        let inst = testkit::medium_instance(13);
        let plan = GreedyScheduler::new().run(&inst, 4).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![Box::new(OffByOne { n: 0 })]);
        let summary = sim.run(40);
        assert_eq!(summary.steps, 40);
        assert_eq!(summary.rejected, 20, "every bad cancel must be counted");
        assert!(summary.skipped >= summary.rejected);
        // Well-formed scenarios never trip the counter.
        let (inst, scn) = simulator("steady", 3);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![scn]);
        assert_eq!(sim.run(200).rejected, 0);
    }

    #[test]
    fn run_can_resume_and_trace_grows() {
        let (inst, scn) = simulator("flash-crowd", 9);
        let plan = GreedyScheduler::new().run(&inst, 6).unwrap();
        let session = OnlineSession::new(&inst, &plan.schedule).unwrap();
        let mut sim = Simulator::new(session, vec![scn]);
        let first = sim.run(100);
        let second = sim.run(100);
        assert_eq!(sim.trace().len(), 200);
        assert!(second.final_tick >= first.final_tick);
        // A fresh run of 200 equals the two-stage run's trace.
        let (inst2, scn2) = simulator("flash-crowd", 9);
        let plan2 = GreedyScheduler::new().run(&inst2, 6).unwrap();
        let session2 = OnlineSession::new(&inst2, &plan2.schedule).unwrap();
        let mut sim2 = Simulator::new(session2, vec![scn2]);
        sim2.run(200);
        assert_eq!(sim.trace().digest(), sim2.trace().digest());
    }
}
