//! Per-step traces and their determinism digest.
//!
//! Every applied (or skipped) disruption appends one [`TraceRecord`]; the
//! whole trace folds into a 64-bit FNV-1a [`Trace::digest`] over the
//! records' exact bit patterns, so two runs produced the same schedule
//! evolution if and only if their digests match. Wall-clock time never
//! enters the trace — determinism is a property of the *schedule*, not the
//! hardware.

use crate::disruption::DisruptionKind;

/// What one simulation step did to the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// 0-based step index.
    pub step: u64,
    /// Simulation tick the disruption fired at.
    pub tick: u64,
    /// Which kind of disruption fired.
    pub kind: DisruptionKind,
    /// Whether the session actually changed state (a cancel of an
    /// unscheduled event, an exhausted extend, … are recorded but inert).
    pub applied: bool,
    /// Utility before the disruption.
    pub utility_before: f64,
    /// Utility right after the disruption, before repair.
    pub utility_disrupted: f64,
    /// Utility after repair.
    pub utility_after: f64,
    /// Events moved/added by the repair.
    pub moves: u32,
}

impl TraceRecord {
    /// How much of the disruption the repair recovered.
    pub fn recovered(&self) -> f64 {
        self.utility_after - self.utility_disrupted
    }
}

/// The full evolution of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// All records, in step order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// FNV-1a digest of the exact trace contents. Two runs with equal
    /// digests followed the same schedule evolution bit for bit.
    pub fn digest(&self) -> u64 {
        self.digest_prefix(self.records.len())
    }

    /// The digest of the first `steps` records (the whole trace when
    /// `steps >= len`). Lets a crash-recovery check compare a partially
    /// driven server arm against the matching prefix of the reference
    /// simulation before resuming where it left off.
    pub fn digest_prefix(&self, steps: usize) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for r in &self.records[..steps.min(self.records.len())] {
            for b in r.step.to_le_bytes() {
                eat(b);
            }
            for b in r.tick.to_le_bytes() {
                eat(b);
            }
            eat(r.kind.tag());
            eat(r.applied as u8);
            for f in [r.utility_before, r.utility_disrupted, r.utility_after] {
                for b in f.to_bits().to_le_bytes() {
                    eat(b);
                }
            }
            for b in r.moves.to_le_bytes() {
                eat(b);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(step: u64, utility: f64) -> TraceRecord {
        TraceRecord {
            step,
            tick: step * 3,
            kind: DisruptionKind::RivalAnnounce,
            applied: true,
            utility_before: utility,
            utility_disrupted: utility - 1.0,
            utility_after: utility - 0.25,
            moves: 2,
        }
    }

    #[test]
    fn equal_traces_equal_digests() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for i in 0..10 {
            a.push(record(i, 50.0 - i as f64));
            b.push(record(i, 50.0 - i as f64));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn single_bit_changes_move_the_digest() {
        let mut a = Trace::new();
        a.push(record(0, 10.0));
        let mut b = Trace::new();
        let mut r = record(0, 10.0);
        r.utility_after += f64::EPSILON * 10.0;
        b.push(r);
        assert_ne!(a.digest(), b.digest());

        let mut c = Trace::new();
        let mut r = record(0, 10.0);
        r.kind = DisruptionKind::ActivityDrift;
        c.push(r);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn recovered_matches_definition() {
        let r = record(0, 10.0);
        assert!((r.recovered() - 0.75).abs() < 1e-12);
    }
}
