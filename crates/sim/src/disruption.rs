//! The disruption vocabulary: everything the outside world can do to a
//! published schedule, as data.

use ses_core::{EventId, IntervalId, UserId};
use ses_service::{Announcement, Arrival, Cancellation, CapacityChange, SessionEvent};

/// One thing that happens to the live schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Disruption {
    /// A third-party event is announced at `interval`; `postings` lists the
    /// users who notice it with their interest `µ(u, c)`.
    RivalAnnounce {
        /// Where the rival lands.
        interval: IntervalId,
        /// Its posting list.
        postings: Vec<(UserId, f64)>,
    },
    /// Population-level activity drift at `interval`: many users gain a weak
    /// outside option (injected as diffuse competing mass — see
    /// `ses_datagen::streams::drift_postings`).
    ActivityDrift {
        /// Where attention drifts away from.
        interval: IntervalId,
        /// The per-user outside-option mass.
        postings: Vec<(UserId, f64)>,
    },
    /// A scheduled event is cancelled (act pulls out); the session backfills.
    Cancel {
        /// The cancelled event.
        event: EventId,
    },
    /// A candidate that missed initial planning becomes available and is
    /// placed greedily if a valid slot exists.
    LateArrival {
        /// The arriving candidate.
        event: EventId,
    },
    /// The organizer frees budget for one more event (`k → k+1` upgrade).
    Extend,
    /// The per-interval resource budget θ moves to `budget`.
    CapacityChange {
        /// The new budget.
        budget: f64,
    },
}

/// A [`Disruption`] stamped with its simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDisruption {
    /// The tick at which the disruption fires.
    pub at: u64,
    /// What happens.
    pub disruption: Disruption,
}

/// The kind tag of a [`Disruption`], for traces and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisruptionKind {
    /// [`Disruption::RivalAnnounce`].
    RivalAnnounce,
    /// [`Disruption::ActivityDrift`].
    ActivityDrift,
    /// [`Disruption::Cancel`].
    Cancel,
    /// [`Disruption::LateArrival`].
    LateArrival,
    /// [`Disruption::Extend`].
    Extend,
    /// [`Disruption::CapacityChange`].
    CapacityChange,
}

impl Disruption {
    /// The service request this disruption maps to — the simulator drives
    /// sessions exclusively through
    /// [`SchedulerService::apply`](ses_service::SchedulerService::apply),
    /// the same code path the CLI and any server front end use.
    ///
    /// Rival announcements and activity drift both inject competing mass,
    /// so both map to [`SessionEvent::Announce`]; the trace keeps them
    /// apart via [`Disruption::kind`].
    pub fn to_session_event(&self) -> SessionEvent {
        match self {
            Disruption::RivalAnnounce { interval, postings }
            | Disruption::ActivityDrift { interval, postings } => {
                SessionEvent::Announce(Announcement {
                    interval: *interval,
                    postings: postings.clone(),
                })
            }
            Disruption::Cancel { event } => SessionEvent::Cancel(Cancellation { event: *event }),
            Disruption::LateArrival { event } => SessionEvent::Arrive(Arrival { event: *event }),
            Disruption::Extend => SessionEvent::Extend,
            Disruption::CapacityChange { budget } => {
                SessionEvent::Capacity(CapacityChange { budget: *budget })
            }
        }
    }

    /// The kind tag of this disruption.
    pub fn kind(&self) -> DisruptionKind {
        match self {
            Disruption::RivalAnnounce { .. } => DisruptionKind::RivalAnnounce,
            Disruption::ActivityDrift { .. } => DisruptionKind::ActivityDrift,
            Disruption::Cancel { .. } => DisruptionKind::Cancel,
            Disruption::LateArrival { .. } => DisruptionKind::LateArrival,
            Disruption::Extend => DisruptionKind::Extend,
            Disruption::CapacityChange { .. } => DisruptionKind::CapacityChange,
        }
    }
}

impl DisruptionKind {
    /// Stable short label (used in traces and CLI output).
    pub fn label(self) -> &'static str {
        match self {
            DisruptionKind::RivalAnnounce => "rival",
            DisruptionKind::ActivityDrift => "drift",
            DisruptionKind::Cancel => "cancel",
            DisruptionKind::LateArrival => "arrival",
            DisruptionKind::Extend => "extend",
            DisruptionKind::CapacityChange => "capacity",
        }
    }

    /// Stable byte tag for trace digests.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DisruptionKind::RivalAnnounce => 1,
            DisruptionKind::ActivityDrift => 2,
            DisruptionKind::Cancel => 3,
            DisruptionKind::LateArrival => 4,
            DisruptionKind::Extend => 5,
            DisruptionKind::CapacityChange => 6,
        }
    }
}
