//! Subcommand implementations for the `ses` binary.
//!
//! Scheduling and simulation run through the [`ses_service::SchedulerService`]
//! facade — the same request/response path a server front end would use —
//! and algorithm names are resolved by the core registry
//! ([`ses_core::SchedulerSpec`]), never string-matched here.

use crate::args::ParsedArgs;
use serde::Serialize;
use ses_core::{schedule_metrics, utility_upper_bound, SchedulerSpec};
use ses_datagen::paper::{PaperConfig, SigmaMode};
use ses_datagen::pipeline::build_instance;
use ses_ebsn::{
    generate as generate_dataset, interest_stats, overlap_stats, EbsnDataset, GeneratorConfig,
};
use ses_service::{SchedulerService, SessionOpen, SessionReport, SolveRequest, SolveResponse};

/// Help text for `ses help`.
pub const HELP: &str = "\
ses — social event scheduling (ICDE 2018 reproduction)

USAGE:
    ses <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
    generate    generate a Meetup-like EBSN dataset and save it as JSON
                  --members N (3000)  --events N (auto)  --groups N (auto)
                  --weeks W (52)      --seed S (0)       --out PATH (required)
    analyze     print dataset statistics (overlap, sparsity, group sizes)
                  --dataset PATH (required)
    solve       build the paper's instance from a dataset and schedule it
      (alias:     --dataset PATH (required unless --instance)   --k K (100)
      schedule)   --t-factor F (1.5)          --algo GRD|GRD-PQ|TOP|RAND|LS|SA|EXACT (GRD)
                  (GRD-PQ is the CELF lazy greedy; aliases LAZY, CELF)
                  --seed S (0)                --checkins  (σ from check-ins)
                  --format text|json (text)   --out PATH  (write the schedule as JSON)
                  --threads N (1)             (shard greedy scoring sweeps; same schedule)
                  --instance PATH  (schedule a packed universe from `ses pack`
                                    instead of building one from a dataset)
                  --trace  (print the span timeline of the solve afterwards)
    pack        build a synthetic universe and write it as a packed instance
                  --profile sparse|workload (sparse)  --out PATH (required)
                  --users N (10000)  --events N (200)  --intervals N (48)
                  --interests N (8; sparse: candidate postings per user)
                  --active N (6; sparse: active intervals per user)
                  --seed S (0)
                  the output cold-opens via --instance flags and `ses serve`
    quality     compare heuristics against the exact optimum on small instances
                  --instances N (20)  --k K (4)
    simulate    replay a disruption workload against the online scheduler
                  --scenario steady|flash-crowd|adversarial|seasonal (steady)
                  --steps N (10000)     --seed S (0)
                  --users N (400)       --events N (60)
                  --intervals N (24)    --k K (20)
                  --algo SPEC (GRD)     --format text|json (text)
                  --threads N (1)       (shard the initial solve's scoring)
                  --holdback F (0.3)    (fraction of candidates arriving late)
                  --instance PATH  (simulate over a packed universe instead of
                                    the generated workload instance)
                  --trace  (print the span timeline of the second run afterwards)
                  runs the stream twice and verifies the traces are identical
    serve       serve the scheduler over HTTP (see DESIGN.md §8–9, §12)
                  --addr A (127.0.0.1:7878)  --shards N (4)
                  --io-threads N (8)         --max-body BYTES (1048576)
                  --users N (400)   --events N (60)
                  --intervals N (24) --seed S (0)
                  --instance NAME=PATH  (register a packed instance under NAME;
                                         repeatable; loaded lazily on first use)
                  --log-level error|warn|info|debug (info)  --log-json
                  --slow-ms MILLIS (250; slow requests log their span timeline)
                  --wal-dir DIR  (per-shard write-ahead log: sessions survive
                                  kill -9, recovered by replay on next boot;
                                  unlocks live migration via POST /admin/rebalance)
                  --fsync per-record|interval[:ms]|off (interval:25; needs --wal-dir)
                  --snapshot-every N (64; events between session snapshots, 0 = never)
                  endpoints: POST /solve /eval /sessions/{name}/open|event|report|close
                             POST /admin/rebalance (durable servers)
                             GET /healthz /metrics /trace/{id} /instances
                             stop with SIGTERM/ctrl-c
    instances   list the instance registry of a running server
                  --addr A (127.0.0.1:7878)  --format text|json (text)
    top         live per-shard / per-endpoint dashboard of a running server
                  --addr A (127.0.0.1:7878)  --interval MILLIS (1000)
                  --once  (print a single frame and exit; no screen clearing)
    loadgen     drive a running server with concurrent closed-loop clients
                  --addr A (127.0.0.1:7878)  --clients N (8)
                  --requests N (2000 per client)
                  --solve-fraction F (0.02)  --solve-k K (8)
                  --k K (12)        --algo SPEC (GRD)   --seed S (0)
                  --instance NAME  (repeatable; clients round-robin across the
                                    named instances — per-instance latency in
                                    the report; default: just \"default\")
                  --verify-steps N (200; 0 skips the sim-digest replay check)
                  --scenario NAME (flash-crowd)  --holdback F (0.3)
                  --format text|json (text)      --out PATH (write the report)
                  --strict  (exit non-zero on any non-2xx or digest mismatch)
                  against a durable server the summary adds a durability
                  section: durable acks + server-side append/fsync latencies
    wal         offline WAL tooling (no server needed)
        inspect   --dir DIR (required; a server's --wal-dir)
                  --records (list every record: kind, LSN, session)
                  --format text|json (text)
    help        show this message
";

/// The output format of a subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn format_of(args: &ParsedArgs) -> Result<Format, String> {
    match args.options.get("format").map(String::as_str) {
        None | Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => Err(format!(
            "unknown format '{other}' (expected 'text' or 'json')"
        )),
    }
}

/// Parses `--algo` (+ global `--seed`) into a spec via the core registry;
/// unknown names surface the registry's typed listing of valid specs.
///
/// A seed pinned in the spec string (`RAND:123`) wins over the global
/// `--seed`; only suffix-less specs pick up the global seed.
fn spec_of(args: &ParsedArgs, default: &str, seed: u64) -> Result<SchedulerSpec, String> {
    let name = args
        .options
        .get("algo")
        .map(String::as_str)
        .unwrap_or(default);
    let spec = SchedulerSpec::parse(name).map_err(|e| e.to_string())?;
    Ok(if name.contains(':') {
        spec
    } else {
        spec.with_seed(seed)
    })
}

/// `ses generate`
pub fn generate(args: &ParsedArgs) -> Result<(), String> {
    let members: usize = args.get_or("members", 3000).map_err(|e| e.to_string())?;
    let mut cfg = GeneratorConfig::meetup_california_scaled(members);
    cfg.num_events = args
        .get_or("events", cfg.num_events)
        .map_err(|e| e.to_string())?;
    cfg.num_groups = args
        .get_or("groups", cfg.num_groups)
        .map_err(|e| e.to_string())?;
    cfg.horizon_weeks = args
        .get_or("weeks", cfg.horizon_weeks)
        .map_err(|e| e.to_string())?;
    cfg.seed = args.get_or("seed", 0).map_err(|e| e.to_string())?;
    let out = args.require("out").map_err(|e| e.to_string())?;

    let dataset = generate_dataset(&cfg);
    dataset.save_json(out).map_err(|e| e.to_string())?;
    println!("wrote {}: {}", out, dataset.summary());
    Ok(())
}

fn load(args: &ParsedArgs) -> Result<EbsnDataset, String> {
    let path = args.require("dataset").map_err(|e| e.to_string())?;
    EbsnDataset::load_json(path).map_err(|e| e.to_string())
}

/// `ses analyze`
pub fn analyze(args: &ParsedArgs) -> Result<(), String> {
    let dataset = load(args)?;
    println!("dataset: {}", dataset.summary());
    let o = overlap_stats(&dataset);
    println!("\ntemporal overlap:");
    println!("  mean concurrent events : {:.2}", o.mean_concurrent);
    println!("  max concurrent events  : {}", o.max_concurrent);
    println!(
        "  spatio-temporal clashes: {:.4}% of event pairs",
        o.spatiotemporal_conflict_fraction * 100.0
    );
    let i = interest_stats(&dataset, 50_000, 0);
    println!("\ninterest (Jaccard over tags):");
    println!("  nonzero fraction       : {:.3}", i.nonzero_fraction);
    println!("  mean nonzero interest  : {:.4}", i.mean_nonzero_interest);
    let hist = ses_ebsn::group_size_histogram(&dataset, &[10, 50, 200, 1000]);
    println!("\ngroup sizes (≤10 / ≤50 / ≤200 / ≤1000 / larger):");
    println!(
        "  {} / {} / {} / {} / {}",
        hist[0], hist[1], hist[2], hist[3], hist[4]
    );
    Ok(())
}

/// `ses solve` (alias: `ses schedule`)
pub fn solve(args: &ParsedArgs) -> Result<(), String> {
    let k: usize = args.get_or("k", 100).map_err(|e| e.to_string())?;
    let t_factor: f64 = args.get_or("t-factor", 1.5).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0).map_err(|e| e.to_string())?;
    let threads: usize = args.get_or("threads", 1).map_err(|e| e.to_string())?;
    let format = format_of(args)?;
    let spec = spec_of(args, "GRD", seed)?;
    // Two ways to get a universe: cold-open a packed file (`ses pack`
    // output — no dataset needed, no rebuild), or build the paper's
    // instance from a dataset. Only the dataset path knows which dataset
    // event each candidate came from, so the preview's source column is
    // optional.
    let (instance, candidate_source) = match args.options.get("instance") {
        Some(path) => {
            let inst = ses_core::store::open_path(std::path::Path::new(path))
                .map_err(|e| format!("open {path}: {e}"))?;
            (inst, None)
        }
        None => {
            let dataset = load(args)?;
            let cfg = PaperConfig {
                k,
                t_factor,
                seed,
                sigma: if args.has_flag("checkins") {
                    SigmaMode::FromCheckins
                } else {
                    SigmaMode::Uniform
                },
                ..PaperConfig::default()
            };
            let built = build_instance(&dataset, &cfg).map_err(|e| e.to_string())?;
            (built.instance, Some(built.candidate_source))
        }
    };
    let service = SchedulerService::new();
    let trace = args.has_flag("trace").then(ses_obs::TraceId::generate);
    let response = {
        let _scope = trace.map(ses_obs::trace_scope);
        service
            .solve(
                &instance,
                &SolveRequest {
                    spec,
                    k,
                    threads,
                    instance: Default::default(),
                },
            )
            .map_err(|e| e.to_string())?
    };

    if format == Format::Json {
        println!(
            "{}",
            serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
        );
    } else {
        println!(
            "{}: scheduled {}/{} events, utility Ω = {:.3}, {:.1} ms",
            response.algorithm,
            response.scheduled(),
            k,
            response.total_utility,
            response.millis
        );
        println!(
            "ops: {} score evaluations, {} posting visits, {} assigns",
            response.counters.score_evaluations,
            response.counters.posting_visits,
            response.counters.assigns
        );
    }

    // Rehydrate the schedule from the response for metrics and export —
    // everything downstream consumes only what went over the wire.
    let mut schedule = instance.empty_schedule();
    for a in &response.assignments {
        schedule
            .assign(a.event, a.interval)
            .map_err(|e| e.to_string())?;
    }
    if format == Format::Text {
        let metrics = schedule_metrics(&instance, &schedule);
        println!(
            "metrics: reach {:.1} users, attendance/event {:.2} (min {:.2} / max {:.2}, gini {:.3}), \
             {} intervals occupied (max {} events), {:.0}% resource use",
            metrics.expected_reach,
            metrics.mean_event_attendance,
            metrics.min_event_attendance,
            metrics.max_event_attendance,
            metrics.attendance_gini,
            metrics.occupied_intervals,
            metrics.max_events_per_interval,
            metrics.mean_resource_utilization * 100.0
        );
        let ub = utility_upper_bound(&instance, k);
        if ub > 0.0 {
            println!(
                "certified quality: Ω is ≥ {:.1}% of any feasible schedule's utility \
                 (admissible upper bound {:.3})",
                100.0 * response.total_utility / ub,
                ub
            );
        }
    }
    if let Some(out) = args.options.get("out") {
        let json = serde_json::to_string_pretty(&schedule).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
        if format == Format::Text {
            println!("wrote schedule to {out}");
        }
    } else if format == Format::Text {
        // Print the first few assignments as a preview.
        for (i, a) in schedule.iter().enumerate() {
            if i >= 10 {
                println!("  … ({} more)", schedule.len() - 10);
                break;
            }
            match &candidate_source {
                Some(source) => {
                    let src = source[a.event.index()];
                    println!("  {} → {} (dataset event {src})", a.event, a.interval);
                }
                None => println!("  {} → {}", a.event, a.interval),
            }
        }
    }
    // The timeline goes to stderr so `--format json` output stays pipeable.
    if let Some(id) = trace {
        eprintln!("{}", ses_obs::format_trace(id, &ses_obs::collect_trace(id)));
    }
    Ok(())
}

/// The JSON body `ses simulate --format json` emits: the service-level
/// session report plus the simulator's summary and workload mix.
#[derive(Debug, Clone, Serialize)]
struct SimulateResponse {
    scenario: String,
    seed: u64,
    withheld: usize,
    initial: SolveResponse,
    summary: ses_sim::SimSummary,
    session: SessionReport,
    mix: Vec<(String, u64)>,
}

/// `ses simulate`
pub fn simulate(args: &ParsedArgs) -> Result<(), String> {
    use ses_core::testkit::workload_instance;
    use ses_sim::{scenario_by_name, SimSummary, Simulator, SCENARIO_NAMES};

    let scenario_name = args
        .options
        .get("scenario")
        .map(String::as_str)
        .unwrap_or("steady");
    let steps: u64 = args.get_or("steps", 10_000).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0).map_err(|e| e.to_string())?;
    let users: usize = args.get_or("users", 400).map_err(|e| e.to_string())?;
    let events: usize = args.get_or("events", 60).map_err(|e| e.to_string())?;
    let intervals: usize = args.get_or("intervals", 24).map_err(|e| e.to_string())?;
    let k: usize = args.get_or("k", 20).map_err(|e| e.to_string())?;
    let threads: usize = args.get_or("threads", 1).map_err(|e| e.to_string())?;
    let holdback: f64 = args.get_or("holdback", 0.3).map_err(|e| e.to_string())?;
    let format = format_of(args)?;
    let spec = spec_of(args, "GRD", seed)?;
    let Some(probe) = scenario_by_name(scenario_name, seed) else {
        return Err(format!(
            "unknown scenario '{scenario_name}' (expected one of: {})",
            SCENARIO_NAMES.join(", ")
        ));
    };
    // Withholding candidates only makes sense for workloads that release
    // them again; otherwise they would be dead weight excluded from every
    // backfill, quietly understating the session's achievable utility.
    let holdback = if probe.releases_late_arrivals() {
        holdback
    } else {
        if holdback > 0.0 && format == Format::Text {
            println!("note: scenario {scenario_name} never emits late arrivals; holdback disabled");
        }
        0.0
    };

    // The same sizing `ses serve` uses — keeping the construction shared is
    // what makes server-replay digests comparable to in-process runs. A
    // packed file (`--instance`) overrides the generated workload, and the
    // printed dimensions come from the instance either way.
    let inst = match args.options.get("instance") {
        Some(path) => ses_core::store::open_path(std::path::Path::new(path))
            .map_err(|e| format!("open {path}: {e}"))?,
        None => workload_instance(users, events, intervals, seed),
    };
    let (users, events, intervals) = (inst.num_users(), inst.num_events(), inst.num_intervals());

    type SimRun = (
        SolveResponse,
        SimSummary,
        SessionReport,
        Vec<(ses_sim::DisruptionKind, u64)>,
        usize,
    );
    let run_once = || -> Result<SimRun, String> {
        // One code path: open the session through the service, then let the
        // simulator drive that same service.
        let mut service = SchedulerService::new();
        let initial = service
            .open_session(
                &inst,
                &SessionOpen {
                    name: "simulate".to_owned(),
                    spec,
                    k: k.min(events),
                    threads,
                    instance: Default::default(),
                },
            )
            .map_err(|e| e.to_string())?;
        let scenario = scenario_by_name(scenario_name, seed).expect("name validated above");
        let mut sim = Simulator::over_service(service, "simulate", vec![scenario])
            .map_err(|e| e.to_string())?;
        let withheld = sim.withhold_fraction(holdback).len();
        let summary = sim.run(steps);
        let report = sim
            .service()
            .report(sim.session_name())
            .map_err(|e| e.to_string())?;
        Ok((initial, summary, report, sim.kind_histogram(), withheld))
    };
    let (initial, first, _, _, _) = run_once()?;
    let trace = args.has_flag("trace").then(ses_obs::TraceId::generate);
    let (_, second, report, histogram, withheld) = {
        let _scope = trace.map(ses_obs::trace_scope);
        run_once()?
    };

    // Timeline of the traced (second) run, to stderr so json stays pipeable.
    // The per-thread ring keeps the most recent spans, so long runs show the
    // tail of the repair stream rather than an unbounded dump.
    if let Some(id) = trace {
        eprintln!("{}", ses_obs::format_trace(id, &ses_obs::collect_trace(id)));
    }

    if first.digest != second.digest {
        return Err(format!(
            "NON-DETERMINISTIC: run 1 digest {:#018x} != run 2 digest {:#018x}",
            first.digest, second.digest
        ));
    }

    if format == Format::Json {
        let body = SimulateResponse {
            scenario: scenario_name.to_owned(),
            seed,
            withheld,
            initial,
            summary: second,
            session: report,
            mix: histogram
                .iter()
                .map(|&(kind, n)| (kind.label().to_owned(), n))
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&body).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "simulate: scenario {scenario_name}, {steps} steps, seed {seed}\n\
         instance: {users} users, {events} events, {intervals} intervals; \
         initial schedule |S| = {} ({}), Ω₀ = {:.3}",
        initial.scheduled(),
        initial.algorithm,
        initial.total_utility
    );
    println!(
        "withheld {withheld} candidates as late arrivals\n\
         determinism: two runs, identical traces (digest {:#018x}) ✓",
        first.digest
    );
    println!(
        "final: Ω = {:.3} (from {:.3}), |S| = {}, tick {}",
        second.final_utility, initial.total_utility, second.final_scheduled, second.final_tick
    );
    println!(
        "repairs: {} disruptions applied ({} inert), {} repair moves, Ω recovered {:.3}",
        second.applied, second.skipped, second.total_moves, second.total_recovered
    );
    if second.rejected > 0 {
        println!(
            "WARNING: {} events rejected by the service (scenario bug?)",
            second.rejected
        );
    }
    let mix: Vec<String> = histogram
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(kind, n)| format!("{} {n}", kind.label()))
        .collect();
    println!("mix: {}", mix.join(", "));
    println!(
        "throughput: {:.0} events/sec ({:.1} ms total); engine: {} score evals, {} posting \
         visits, {} assigns, {} unassigns",
        second.events_per_sec,
        second.elapsed.as_secs_f64() * 1e3,
        second.counters.score_evaluations,
        second.counters.posting_visits,
        second.counters.assigns,
        second.counters.unassigns
    );
    println!(
        "service: session '{}' absorbed {} events",
        report.name, report.events_applied
    );
    Ok(())
}

/// `ses serve`
pub fn serve(args: &ParsedArgs) -> Result<(), String> {
    let level_name = args
        .options
        .get("log-level")
        .map(String::as_str)
        .unwrap_or("info");
    let level = ses_obs::Level::parse(level_name)
        .ok_or_else(|| format!("unknown log level '{level_name}' (error|warn|info|debug)"))?;
    ses_obs::set_log_level(level);
    ses_obs::set_log_json(args.has_flag("log-json"));
    // Each `--instance name=path` registers a packed file as a lazily
    // loaded tenant next to the built-in "default" workload universe.
    let mut instances = Vec::new();
    for entry in args.get_all("instance") {
        let Some((name, path)) = entry.split_once('=') else {
            return Err(format!("--instance expects NAME=PATH, got '{entry}'"));
        };
        if name.is_empty() || path.is_empty() {
            return Err(format!("--instance expects NAME=PATH, got '{entry}'"));
        }
        instances.push((name.to_owned(), std::path::PathBuf::from(path)));
    }
    let wal_dir = args.options.get("wal-dir").map(std::path::PathBuf::from);
    let fsync = match args.options.get("fsync") {
        None => ses_server::FsyncPolicy::Interval { millis: 25 },
        Some(v) => ses_server::FsyncPolicy::parse(v)?,
    };
    if wal_dir.is_none() && args.options.contains_key("fsync") {
        return Err("--fsync needs --wal-dir (no WAL to sync without one)".to_owned());
    }
    let snapshot_every: u64 = args
        .get_or("snapshot-every", 64)
        .map_err(|e| e.to_string())?;
    let cfg = ses_server::ServerConfig {
        addr: args
            .options
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".to_owned()),
        shards: args.get_or("shards", 4).map_err(|e| e.to_string())?,
        io_threads: args.get_or("io-threads", 8).map_err(|e| e.to_string())?,
        max_body_bytes: args
            .get_or("max-body", 1 << 20)
            .map_err(|e| e.to_string())?,
        users: args.get_or("users", 400).map_err(|e| e.to_string())?,
        events: args.get_or("events", 60).map_err(|e| e.to_string())?,
        intervals: args.get_or("intervals", 24).map_err(|e| e.to_string())?,
        seed: args.get_or("seed", 0).map_err(|e| e.to_string())?,
        slow_request_millis: args.get_or("slow-ms", 250).map_err(|e| e.to_string())?,
        instances,
        wal_dir,
        fsync,
        snapshot_every,
    };
    ses_server::install_signal_handlers();
    let handle = ses_server::serve(&cfg).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    println!(
        "ses-server listening on {} — {} shards, {} io threads, default instance {}u/{}e/{}t seed {}, {} packed tenant(s)",
        handle.addr(),
        cfg.shards,
        cfg.io_threads,
        cfg.users,
        cfg.events,
        cfg.intervals,
        cfg.seed,
        cfg.instances.len()
    );
    match &cfg.wal_dir {
        Some(dir) => println!(
            "durability: WAL at {} (fsync {}, snapshot every {} events) — sessions survive \
             kill -9; live migration via POST /admin/rebalance",
            dir.display(),
            cfg.fsync.label(),
            cfg.snapshot_every
        ),
        None => println!("durability: off (no --wal-dir; sessions are in-memory only)"),
    }
    println!("endpoints: POST /solve /eval /sessions/{{name}}/open|event|report|close /admin/rebalance · GET /healthz /metrics /trace/{{id}} /instances");
    handle.join();
    println!("ses-server: drained, bye");
    Ok(())
}

/// `ses loadgen`
pub fn loadgen(args: &ParsedArgs) -> Result<(), String> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let seed: u64 = args.get_or("seed", 0).map_err(|e| e.to_string())?;
    let spec = spec_of(args, "GRD", seed)?;
    let mut instances: Vec<String> = args
        .get_all("instance")
        .into_iter()
        .map(str::to_owned)
        .collect();
    if instances.is_empty() {
        instances.push("default".to_owned());
    }
    let cfg = ses_server::LoadgenConfig {
        addr: addr.clone(),
        clients: args.get_or("clients", 8).map_err(|e| e.to_string())?,
        requests: args.get_or("requests", 2000).map_err(|e| e.to_string())?,
        solve_fraction: args
            .get_or("solve-fraction", 0.02)
            .map_err(|e| e.to_string())?,
        solve_k: args.get_or("solve-k", 8).map_err(|e| e.to_string())?,
        k: args.get_or("k", 12).map_err(|e| e.to_string())?,
        spec,
        threads: args.get_or("threads", 1).map_err(|e| e.to_string())?,
        seed,
        instances,
    };
    let verify_steps: u64 = args
        .get_or("verify-steps", 200)
        .map_err(|e| e.to_string())?;
    let format = format_of(args)?;

    let summary = ses_server::loadgen::run(&cfg)?;

    let mut client = ses_server::HttpClient::new(addr);
    let digest = if verify_steps > 0 {
        Some(ses_server::verify_replay(
            &mut client,
            &ses_server::ReplayConfig {
                scenario: args
                    .options
                    .get("scenario")
                    .cloned()
                    .unwrap_or_else(|| "flash-crowd".to_owned()),
                steps: verify_steps,
                seed,
                spec,
                k: cfg.k,
                threads: cfg.threads,
                holdback: args.get_or("holdback", 0.3).map_err(|e| e.to_string())?,
                session: format!("replay-{seed}"),
            },
        )?)
    } else {
        None
    };
    let (status, body) = client
        .get("/metrics")
        .map_err(|e| format!("GET /metrics failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics answered {status}: {body}"));
    }
    let server: ses_server::MetricsReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /metrics body: {e}"))?;
    let report = ses_server::ServerBenchReport {
        loadgen: summary,
        server,
        digest,
        durability: Vec::new(),
    };

    if let Some(out) = args.options.get("out") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| e.to_string())?;
    }
    if format == Format::Json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let s = &report.loadgen;
        println!(
            "loadgen: {} clients × {} requests against {} — {:.0} req/s ({} requests in {:.1} ms)",
            s.clients, cfg.requests, cfg.addr, s.req_per_sec, s.requests, s.elapsed_millis
        );
        println!(
            "latency: mean {:.0} µs, p50 {} µs, p95 {} µs, p99 {} µs, max {} µs",
            s.mean_micros, s.p50_micros, s.p95_micros, s.p99_micros, s.max_micros
        );
        if s.per_instance.len() > 1 {
            println!("per-instance (cross-tenant isolation):");
            for l in &s.per_instance {
                println!(
                    "  {:<16} {} clients, {} requests, {} errors — p50 {} µs, p95 {} µs, p99 {} µs, max {} µs",
                    l.instance,
                    l.clients,
                    l.requests,
                    l.errors,
                    l.p50_micros,
                    l.p95_micros,
                    l.p99_micros,
                    l.max_micros
                );
            }
        }
        let mix: Vec<String> = s
            .mix
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(l, n)| format!("{l} {n}"))
            .collect();
        println!("mix: {}; {} ok, {} errors", mix.join(", "), s.ok, s.errors);
        if let Some(w) = &s.wal {
            println!(
                "durability: fsync {}, {} records, {} fsyncs, {} durable acks",
                w.policy, w.records, w.fsyncs, w.durable_acks
            );
            for line in [w.append.as_ref(), w.fsync.as_ref()].into_iter().flatten() {
                println!(
                    "  {:<10} {} calls — mean {:.0} µs, p50 {} µs, p95 {} µs, p99 {} µs, max {} µs",
                    line.endpoint,
                    line.count,
                    line.mean_micros,
                    line.p50_micros,
                    line.p95_micros,
                    line.p99_micros,
                    line.max_micros
                );
            }
        }
        if !s.status_counts.is_empty() {
            let by_status: Vec<String> = s
                .status_counts
                .iter()
                .map(|c| format!("{}×{}", c.count, c.status))
                .collect();
            println!("  non-2xx by status: {}", by_status.join(", "));
        }
        for sample in &s.error_samples {
            println!("  error sample: {sample}");
        }
        if !s.slowest.is_empty() {
            println!("slowest requests (span timelines at GET /trace/{{id}} while spans live):");
            for r in &s.slowest {
                println!(
                    "  {:>7} µs  {:<7} {}  trace {}",
                    r.micros, r.endpoint, r.status, r.trace
                );
            }
        }
        match &report.digest {
            Some(d) if d.matches && d.utility_bits_match => println!(
                "determinism: {} replayed disruptions, server digest ≡ sim digest ({:#018x}) ✓",
                d.steps, d.sim_digest
            ),
            Some(d) => println!(
                "determinism: MISMATCH — server {:#018x} vs sim {:#018x} (utility bits equal: {})",
                d.server_digest, d.sim_digest, d.utility_bits_match
            ),
            None => println!("determinism: skipped (--verify-steps 0)"),
        }
        if let Some(out) = args.options.get("out") {
            println!("wrote report to {out}");
        }
    }

    if args.has_flag("strict") {
        if report.loadgen.errors > 0 {
            return Err(format!(
                "strict mode: {} non-2xx responses",
                report.loadgen.errors
            ));
        }
        if let Some(d) = &report.digest {
            if !d.matches || !d.utility_bits_match {
                return Err(format!(
                    "strict mode: digest mismatch (server {:#018x} vs sim {:#018x})",
                    d.server_digest, d.sim_digest
                ));
            }
        }
    }
    Ok(())
}

/// Renders one `ses top` frame from a `/metrics` report. Pure — all state
/// comes in through the report — so the layout is unit-testable without a
/// server or a terminal.
pub fn top_frame(addr: &str, report: &ses_server::MetricsReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ses top — {addr} · up {:.1}s · {} shards · {} ok / {} 4xx / {} 5xx",
        report.uptime_millis / 1e3,
        report.shards,
        report.requests_2xx,
        report.requests_4xx,
        report.requests_5xx
    );
    let _ = writeln!(
        out,
        "engine: {} sessions, {} events applied, {} score evals, {} posting visits",
        report.engine.sessions,
        report.engine.events_applied,
        report.engine.counters.score_evaluations,
        report.engine.counters.posting_visits
    );

    let _ = writeln!(out, "\n  shard  depth  handled    busy%  sessions  events");
    let uptime_micros = report.uptime_millis * 1e3;
    for s in &report.shards_detail {
        let busy_pct = if uptime_micros > 0.0 {
            100.0 * s.busy_micros as f64 / uptime_micros
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:>5}  {:>5}  {:>7}  {:>6.1}  {:>8}  {:>6}",
            s.shard, s.queue_depth, s.handled, busy_pct, s.sessions, s.events_applied
        );
    }

    let _ = writeln!(
        out,
        "\n  endpoint   count   mean µs    p50    p95    p99    max"
    );
    for e in &report.endpoints {
        let _ = writeln!(
            out,
            "  {:<9}  {:>5}  {:>8.0}  {:>5}  {:>5}  {:>5}  {:>5}",
            e.endpoint,
            e.count,
            e.mean_micros,
            e.p50_micros,
            e.p95_micros,
            e.p99_micros,
            e.max_micros
        );
    }

    let _ = writeln!(
        out,
        "\n  stage      count   mean µs    p50    p95    p99    max"
    );
    for s in &report.span_stages {
        let _ = writeln!(
            out,
            "  {:<9}  {:>5}  {:>8.0}  {:>5}  {:>5}  {:>5}  {:>5}",
            s.stage, s.count, s.mean_micros, s.p50_micros, s.p95_micros, s.p99_micros, s.max_micros
        );
    }
    out
}

/// `ses top` — poll `/metrics` and redraw a live text dashboard.
pub fn top(args: &ParsedArgs) -> Result<(), String> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let interval: u64 = args.get_or("interval", 1000).map_err(|e| e.to_string())?;
    let once = args.has_flag("once");
    let mut client = ses_server::HttpClient::new(addr.clone());
    let fetch = |client: &mut ses_server::HttpClient| -> Result<ses_server::MetricsReport, String> {
        let (status, body) = client
            .get("/metrics")
            .map_err(|e| format!("GET /metrics failed: {e}"))?;
        if status != 200 {
            return Err(format!("GET /metrics answered {status}: {body}"));
        }
        serde_json::from_str(&body).map_err(|e| format!("bad /metrics body: {e}"))
    };
    loop {
        match fetch(&mut client) {
            Ok(report) if once => {
                print!("{}", top_frame(&addr, &report));
                return Ok(());
            }
            // ANSI clear + home, then the frame — a poor man's curses.
            Ok(report) => print!("\x1b[2J\x1b[H{}", top_frame(&addr, &report)),
            Err(e) if once => return Err(format!("{addr}: {e}")),
            // Live mode rides out restarts instead of dying on one bad poll.
            Err(e) => println!("\x1b[2J\x1b[Hses top — {addr}: {e} (retrying)"),
        }
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

/// `ses pack` — materialize a synthetic universe once and write it as a
/// packed columnar instance file servers and CLI runs cold-open without a
/// rebuild (see `ses_core::store` and DESIGN.md §12).
pub fn pack(args: &ParsedArgs) -> Result<(), String> {
    let users: usize = args.get_or("users", 10_000).map_err(|e| e.to_string())?;
    let events: usize = args.get_or("events", 200).map_err(|e| e.to_string())?;
    let intervals: usize = args.get_or("intervals", 48).map_err(|e| e.to_string())?;
    let interests: usize = args.get_or("interests", 8).map_err(|e| e.to_string())?;
    let active: usize = args.get_or("active", 6).map_err(|e| e.to_string())?;
    let seed: u64 = args.get_or("seed", 0).map_err(|e| e.to_string())?;
    let out = args.require("out").map_err(|e| e.to_string())?;
    let profile = args
        .options
        .get("profile")
        .map(String::as_str)
        .unwrap_or("sparse");

    let build_start = std::time::Instant::now();
    let inst = match profile {
        "sparse" => ses_datagen::synthetic::sparse_population(
            users, events, intervals, interests, active, seed,
        ),
        // The same construction `ses serve` boots with, so a packed file
        // can stand in for the server's default workload bit-for-bit.
        "workload" => ses_core::testkit::workload_instance(users, events, intervals, seed),
        other => {
            return Err(format!(
                "unknown profile '{other}' (expected 'sparse' or 'workload')"
            ))
        }
    };
    let build_millis = build_start.elapsed().as_secs_f64() * 1e3;
    let pack_start = std::time::Instant::now();
    ses_core::store::pack_to_path(&inst, std::path::Path::new(out))
        .map_err(|e| format!("pack {out}: {e}"))?;
    let pack_millis = pack_start.elapsed().as_secs_f64() * 1e3;
    let bytes = std::fs::metadata(out).map_err(|e| e.to_string())?.len();
    println!(
        "packed {profile} universe {}u/{}e/{}t seed {seed} → {out}: {bytes} bytes \
         (build {build_millis:.1} ms, pack {pack_millis:.1} ms)",
        inst.num_users(),
        inst.num_events(),
        inst.num_intervals()
    );
    Ok(())
}

/// `ses instances` — list a running server's instance registry.
pub fn instances(args: &ParsedArgs) -> Result<(), String> {
    let addr = args
        .options
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_owned());
    let format = format_of(args)?;
    let mut client = ses_server::HttpClient::new(addr.clone());
    let (status, body) = client
        .get("/instances")
        .map_err(|e| format!("GET /instances failed: {e}"))?;
    if status != 200 {
        return Err(format!("GET /instances answered {status}: {body}"));
    }
    let report: ses_server::InstancesReport =
        serde_json::from_str(&body).map_err(|e| format!("bad /instances body: {e}"))?;
    if format == Format::Json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("instances @ {addr}:");
    println!(
        "  {:<16} {:<8} {:>9} {:>7} {:>9} {:>9}  source",
        "name", "loaded", "users", "events", "intervals", "competing"
    );
    for i in &report.instances {
        if i.loaded {
            println!(
                "  {:<16} {:<8} {:>9} {:>7} {:>9} {:>9}  {}",
                i.name, "yes", i.users, i.events, i.intervals, i.competing, i.source
            );
        } else {
            println!(
                "  {:<16} {:<8} {:>9} {:>7} {:>9} {:>9}  {}",
                i.name, "lazy", "-", "-", "-", "-", i.source
            );
        }
    }
    Ok(())
}

/// `ses wal inspect` — offline dissection of a server's `--wal-dir`:
/// per-shard segment and snapshot inventory, LSN ranges, torn tails, and
/// (with `--records`) every record's kind/LSN/session.
pub fn wal_inspect(args: &ParsedArgs) -> Result<(), String> {
    let dir = args.require("dir").map_err(|e| e.to_string())?;
    let with_records = args.has_flag("records");
    let format = format_of(args)?;
    let inspection = ses_durable::inspect_dir(std::path::Path::new(dir), with_records)?;
    if format == Format::Json {
        println!(
            "{}",
            serde_json::to_string_pretty(&inspection).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if inspection.shards.is_empty() {
        println!("wal inspect: no WAL shards under {dir}");
        return Ok(());
    }
    for shard in &inspection.shards {
        println!("{} — {} records", shard.dir, shard.records);
        for seg in &shard.segments {
            let torn = seg
                .torn
                .as_deref()
                .map(|t| format!("  TORN: {t}"))
                .unwrap_or_default();
            println!(
                "  {:<16} {:>9} bytes, {:>6} records, lsn {}..={}{torn}",
                seg.file, seg.bytes, seg.records, seg.first_lsn, seg.last_lsn
            );
        }
        for snap in &shard.snapshots {
            println!(
                "  {:<16} session '{}' @ lsn {} — {} events, {} scheduled",
                snap.file, snap.session, snap.lsn, snap.events, snap.scheduled
            );
        }
        for err in &shard.errors {
            println!("  ERROR: {err}");
        }
        for rec in &shard.record_list {
            println!(
                "    {:>8}  {:<8} lsn {:>6}  {:>6} bytes  {}",
                rec.offset, rec.kind, rec.lsn, rec.bytes, rec.session
            );
        }
    }
    Ok(())
}

/// `ses quality`
pub fn quality(args: &ParsedArgs) -> Result<(), String> {
    use ses_core::registry;
    use ses_core::testkit::{random_instance, TestInstanceConfig};
    let instances: usize = args.get_or("instances", 20).map_err(|e| e.to_string())?;
    let k: usize = args.get_or("k", 4).map_err(|e| e.to_string())?;
    let names = ["GRD", "GRD-PQ", "LS", "TOP", "RAND"];
    let mut sums = vec![0.0; names.len()];
    let mut solved = 0usize;
    for seed in 0..instances as u64 {
        let inst = random_instance(&TestInstanceConfig {
            num_users: 12,
            num_events: 8,
            num_intervals: 4,
            num_competing: 6,
            num_locations: 3,
            theta: 8.0,
            xi_max: 3.0,
            interest_density: 0.45,
            seed,
        });
        let Ok(opt) = registry::build(SchedulerSpec::Exact).run(&inst, k) else {
            continue;
        };
        if opt.total_utility <= 0.0 {
            continue;
        }
        solved += 1;
        for (i, name) in names.iter().enumerate() {
            let spec = SchedulerSpec::parse(name)
                .map_err(|e| e.to_string())?
                .with_seed(seed);
            let out = registry::build(spec)
                .run(&inst, k)
                .map_err(|e| e.to_string())?;
            sums[i] += out.total_utility / opt.total_utility;
        }
    }
    if solved == 0 {
        return Err("no instance solved exactly".to_owned());
    }
    println!("mean utility ratio vs exact optimum over {solved} instances (k = {k}):");
    for (i, name) in names.iter().enumerate() {
        println!("  {:<7} {:.4}", name, sums[i] / solved as f64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ses_server::{EndpointLatency, EngineTotals, MetricsReport, ShardStatus};

    fn sample_report() -> MetricsReport {
        MetricsReport {
            uptime_millis: 2_000.0,
            shards: 2,
            requests_2xx: 10,
            requests_4xx: 1,
            requests_5xx: 0,
            endpoints: vec![EndpointLatency {
                endpoint: "solve".to_owned(),
                count: 3,
                mean_micros: 850.0,
                p50_micros: 700,
                p95_micros: 1_400,
                p99_micros: 1_500,
                max_micros: 1_600,
            }],
            engine: EngineTotals::default(),
            shards_detail: vec![
                ShardStatus {
                    shard: 0,
                    queue_depth: 1,
                    handled: 6,
                    busy_micros: 400_000,
                    sessions: 2,
                    events_applied: 57,
                    column_slots: 1_024,
                    resident_bytes: 40_960,
                },
                ShardStatus {
                    shard: 1,
                    queue_depth: 0,
                    handled: 5,
                    busy_micros: 100_000,
                    sessions: 1,
                    events_applied: 12,
                    column_slots: 512,
                    resident_bytes: 20_480,
                },
            ],
            span_stages: vec![ses_obs::StageLatency {
                stage: "queue".to_owned(),
                count: 11,
                mean_micros: 42.0,
                p50_micros: 30,
                p95_micros: 90,
                p99_micros: 120,
                max_micros: 200,
            }],
            wal: None,
        }
    }

    #[test]
    fn top_frame_lays_out_shards_endpoints_and_stages() {
        let frame = top_frame("127.0.0.1:7878", &sample_report());
        assert!(frame.starts_with("ses top — 127.0.0.1:7878 · up 2.0s · 2 shards"));
        assert!(frame.contains("10 ok / 1 4xx / 0 5xx"), "{frame}");
        // Shard 0 spent 400 ms busy over a 2 s uptime: 20% occupancy.
        let shard0 = frame.lines().find(|l| l.trim().starts_with('0')).unwrap();
        assert!(shard0.contains("20.0"), "busy%% wrong in: {shard0}");
        assert!(shard0.contains("57"), "events_applied missing: {shard0}");
        assert!(frame.contains("solve"), "{frame}");
        assert!(frame.contains("queue"), "{frame}");
        // One line per shard, endpoint, and stage — nothing dropped.
        assert_eq!(frame.lines().filter(|l| l.contains("µs")).count(), 2);
    }

    #[test]
    fn top_frame_survives_an_empty_report() {
        let report = MetricsReport {
            uptime_millis: 0.0,
            shards: 0,
            requests_2xx: 0,
            requests_4xx: 0,
            requests_5xx: 0,
            endpoints: vec![],
            engine: EngineTotals::default(),
            shards_detail: vec![],
            span_stages: vec![],
            wal: None,
        };
        let frame = top_frame("x", &report);
        assert!(frame.contains("0 shards"));
    }
}
