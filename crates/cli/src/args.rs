//! Minimal argument parsing for the `ses` binary (no external parser in the
//! offline dependency set; the surface is small enough to hand-roll).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` pairs (a repeated option keeps its last value here).
    pub options: BTreeMap<String, String>,
    /// Every `--key value` pair in argument order, repeats included —
    /// the source [`ParsedArgs::get_all`] reads for repeatable options.
    pub pairs: Vec<(String, String)>,
    /// Bare `--flag`s.
    pub flags: Vec<String>,
}

/// Errors from parsing or option lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        key: String,
        /// The unparseable text.
        value: String,
    },
    /// A required option was absent.
    MissingOption(String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "missing subcommand (try `ses help`)"),
            ArgsError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgsError::BadValue { key, value } => {
                write!(f, "option --{key} has invalid value '{value}'")
            }
            ArgsError::MissingOption(k) => write!(f, "required option --{k} is missing"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Option names that are flags (take no value).
const FLAG_NAMES: &[&str] = &[
    "full", "quiet", "checkins", "strict", "trace", "log-json", "once", "records",
];

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let mut out = ParsedArgs::default();
    let mut it = args.iter();
    out.command = it.next().cloned().ok_or(ArgsError::MissingCommand)?;
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if FLAG_NAMES.contains(&key) {
                out.flags.push(key.to_owned());
            } else {
                let value = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ArgsError::MissingValue(key.to_owned()))?;
                out.pairs.push((key.to_owned(), value.clone()));
                out.options.insert(key.to_owned(), value);
            }
        } else {
            return Err(ArgsError::BadValue {
                key: "<positional>".to_owned(),
                value: arg.clone(),
            });
        }
    }
    Ok(out)
}

impl ParsedArgs {
    /// A parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgsError::BadValue {
                key: key.to_owned(),
                value: v.clone(),
            }),
        }
    }

    /// A required option.
    pub fn require(&self, key: &str) -> Result<&str, ArgsError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgsError::MissingOption(key.to_owned()))
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Every value a repeatable option was given, in argument order
    /// (empty if absent). `options` keeps only the last occurrence.
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let p = parse(&sv(&["schedule", "--k", "30", "--algo", "GRD", "--full"])).unwrap();
        assert_eq!(p.command, "schedule");
        assert_eq!(p.options["k"], "30");
        assert_eq!(p.options["algo"], "GRD");
        assert!(p.has_flag("full"));
        assert!(!p.has_flag("quiet"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let p = parse(&sv(&["x", "--k", "7"])).unwrap();
        assert_eq!(p.get_or("k", 1usize).unwrap(), 7);
        assert_eq!(p.get_or("missing", 42usize).unwrap(), 42);
        let p = parse(&sv(&["x", "--k", "seven"])).unwrap();
        assert!(matches!(
            p.get_or("k", 1usize).unwrap_err(),
            ArgsError::BadValue { .. }
        ));
    }

    #[test]
    fn repeated_options_are_all_kept_in_order() {
        let p = parse(&sv(&[
            "serve",
            "--instance",
            "a=/tmp/a.sesstore",
            "--shards",
            "2",
            "--instance",
            "b=/tmp/b.sesstore",
        ]))
        .unwrap();
        assert_eq!(
            p.get_all("instance"),
            vec!["a=/tmp/a.sesstore", "b=/tmp/b.sesstore"]
        );
        // The map keeps last-wins semantics for single-valued callers.
        assert_eq!(p.options["instance"], "b=/tmp/b.sesstore");
        assert!(p.get_all("missing").is_empty());
    }

    #[test]
    fn require_reports_missing() {
        let p = parse(&sv(&["x"])).unwrap();
        assert!(matches!(
            p.require("dataset").unwrap_err(),
            ArgsError::MissingOption(_)
        ));
    }

    #[test]
    fn error_cases() {
        assert_eq!(parse(&[]).unwrap_err(), ArgsError::MissingCommand);
        assert!(matches!(
            parse(&sv(&["x", "--k"])).unwrap_err(),
            ArgsError::MissingValue(_)
        ));
        assert!(matches!(
            parse(&sv(&["x", "stray"])).unwrap_err(),
            ArgsError::BadValue { .. }
        ));
    }
}
