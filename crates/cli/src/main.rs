//! `ses` — command-line front end for social event scheduling.
//!
//! ```text
//! ses generate --members 3000 --events 1500 --weeks 52 --seed 0 --out data.json
//! ses analyze  --dataset data.json
//! ses solve    --dataset data.json --k 100 --algo GRD [--checkins] [--format json]
//! ses pack     --profile sparse --users 100000 --out universe.sesstore
//! ses quality  [--instances 20] [--k 4]
//! ses simulate --scenario flash-crowd --steps 10000 --seed 42 [--format json]
//! ses serve    --addr 127.0.0.1:7878 --shards 4 [--wal-dir DIR [--fsync POLICY]] [--instance name=path]...
//! ses instances --addr 127.0.0.1:7878
//! ses top      --addr 127.0.0.1:7878 [--once]
//! ses loadgen  --addr 127.0.0.1:7878 --clients 8 [--instance name]... [--strict]
//! ses wal inspect --dir DIR [--records] [--format json]
//! ses help
//! ```

use ses_cli::{args, commands};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    // `ses wal <action>` is a two-word command; fold it into one token so
    // the flat option parser stays flat.
    if argv.first().map(String::as_str) == Some("wal")
        && argv.get(1).is_some_and(|a| !a.starts_with("--"))
    {
        let action = argv.remove(1);
        argv[0] = format!("wal-{action}");
    }
    let parsed = match args::parse(&argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("ses: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match parsed.command.as_str() {
        "generate" => commands::generate(&parsed),
        "analyze" => commands::analyze(&parsed),
        "solve" | "schedule" => commands::solve(&parsed),
        "pack" => commands::pack(&parsed),
        "quality" => commands::quality(&parsed),
        "simulate" => commands::simulate(&parsed),
        "serve" => commands::serve(&parsed),
        "instances" => commands::instances(&parsed),
        "top" => commands::top(&parsed),
        "loadgen" => commands::loadgen(&parsed),
        "wal-inspect" => commands::wal_inspect(&parsed),
        "wal" => Err("wal needs an action (try `ses wal inspect --dir DIR`)".to_owned()),
        "help" | "--help" | "-h" => {
            print!("{}", commands::HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}' (try `ses help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ses: {e}");
            ExitCode::FAILURE
        }
    }
}
