//! Library surface of the `ses` command-line tool, exposed so the
//! subcommands are integration-testable without spawning processes.

#![warn(rust_2018_idioms)]

pub mod args;
pub mod commands;
