//! The kill -9 test: a real `ses serve` child process, killed without
//! warning halfway through a recorded disruption stream, restarted on the
//! same `--wal-dir` — and the resumed replay must produce the same trace
//! digest, bit for bit, as the uninterrupted in-process simulation. This
//! is the out-of-process proof of the recovery-equals-replay argument
//! (DESIGN.md §13); the in-process variants live in `ses-server`'s
//! `durability_integration` tests.

use ses_server::{
    drive_range, finish_replay, open_server_session, prepare_replay, HttpClient, ReplayConfig,
};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// Scratch WAL directory, wiped on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("ses-crash-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A `ses serve` child that is SIGKILLed on drop (tests must never leak a
/// listener, least of all on a failing assertion).
struct Server(std::process::Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `ses serve` with a fixed universe on `addr`, WAL-backed with
/// per-record fsync (the strictest policy — every acked event must survive
/// the kill).
fn spawn_server(addr: &str, wal_dir: &std::path::Path) -> Server {
    let child = Command::new(env!("CARGO_BIN_EXE_ses"))
        .args([
            "serve",
            "--addr",
            addr,
            "--shards",
            "2",
            "--io-threads",
            "2",
            "--users",
            "60",
            "--events",
            "16",
            "--intervals",
            "8",
            "--seed",
            "7",
            "--wal-dir",
            wal_dir.to_str().unwrap(),
            "--fsync",
            "per-record",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ses serve");
    Server(child)
}

/// Polls `/healthz` until the server answers (fresh connection per try —
/// the listener may not exist yet).
fn wait_ready(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let mut client = HttpClient::new(addr.to_owned());
        if let Ok((200, _)) = client.get("/healthz") {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "server on {addr} never became healthy"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn kill_dash_nine_mid_stream_recovers_to_a_bit_identical_replay() {
    let scratch = Scratch::new();
    // Reserve a port, then free it for the child. (The tiny window between
    // drop and bind is the standard ephemeral-port test idiom.)
    let addr = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().to_string()
    };

    let server = spawn_server(&addr, &scratch.0);
    wait_ready(&addr);

    let cfg = ReplayConfig {
        steps: 60,
        k: 8,
        session: "crash-replay".to_owned(),
        ..ReplayConfig::default()
    };
    let mut client = HttpClient::new(addr.clone());
    let session = prepare_replay(&mut client, &cfg).expect("reference simulation");
    let mut state = open_server_session(&mut client, &cfg, &session).expect("server arm open");
    let half = session.recorded.len() / 2;
    drive_range(&mut client, &cfg, &session, &mut state, 0, half).expect("first half");
    assert_eq!(
        state.trace.digest(),
        session.sim_trace.digest_prefix(half),
        "prefix digests must agree before the crash"
    );

    // kill -9: no drain, no flush hooks, no goodbye. Every event above was
    // acked, and per-record fsync means every ack is on disk.
    drop(server);

    let server = spawn_server(&addr, &scratch.0);
    wait_ready(&addr);
    let mut client = HttpClient::new(addr);
    drive_range(
        &mut client,
        &cfg,
        &session,
        &mut state,
        half,
        session.recorded.len(),
    )
    .expect("second half after recovery");
    let check = finish_replay(&mut client, &cfg, &session, &state).expect("final comparison");
    assert!(
        check.matches,
        "recovered replay diverged: server {:#018x} vs sim {:#018x}",
        check.server_digest, check.sim_digest
    );
    assert!(
        check.utility_bits_match,
        "final utility bits diverged after recovery"
    );
    // Recovery left its reports on disk for the operator.
    assert!(
        (0..2).any(|i| scratch
            .0
            .join(format!("shard-{i}"))
            .join("recovery.json")
            .exists()),
        "no recovery.json written by the restarted server"
    );
    drop(server);
}
