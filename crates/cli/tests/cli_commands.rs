//! Integration tests of the `ses` subcommands, driven through the same
//! parsed-argument structures the binary uses.

use ses_cli::args::parse;
use ses_cli::commands;

fn argv(parts: &[&str]) -> ses_cli::args::ParsedArgs {
    let v: Vec<String> = parts.iter().map(|s| s.to_string()).collect();
    parse(&v).expect("test argv parses")
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ses_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_analyze_schedule_pipeline() {
    let out = temp_path("pipeline.json");
    let out_str = out.to_str().unwrap();
    commands::generate(&argv(&[
        "generate",
        "--members",
        "200",
        "--events",
        "150",
        "--weeks",
        "6",
        "--out",
        out_str,
    ]))
    .expect("generate succeeds");
    assert!(out.exists());

    commands::analyze(&argv(&["analyze", "--dataset", out_str])).expect("analyze succeeds");

    let plan = temp_path("plan.json");
    commands::solve(&argv(&[
        "schedule",
        "--dataset",
        out_str,
        "--k",
        "10",
        "--algo",
        "GRD",
        "--out",
        plan.to_str().unwrap(),
    ]))
    .expect("schedule succeeds");
    // The schedule JSON must deserialize into a ses-core Schedule with 10
    // assignments.
    let json = std::fs::read_to_string(&plan).unwrap();
    let schedule: ses_core::Schedule = serde_json::from_str(&json).unwrap();
    assert_eq!(schedule.len(), 10);

    // `--threads` shards the scoring sweeps without changing the result.
    let plan_threaded = temp_path("plan_threaded.json");
    commands::solve(&argv(&[
        "solve",
        "--dataset",
        out_str,
        "--k",
        "10",
        "--algo",
        "GRD",
        "--threads",
        "4",
        "--out",
        plan_threaded.to_str().unwrap(),
    ]))
    .expect("solve --threads succeeds");
    let threaded_json = std::fs::read_to_string(&plan_threaded).unwrap();
    let threaded: ses_core::Schedule = serde_json::from_str(&threaded_json).unwrap();
    assert_eq!(threaded, schedule, "--threads must not change the schedule");

    std::fs::remove_file(out).ok();
    std::fs::remove_file(plan).ok();
    std::fs::remove_file(plan_threaded).ok();
}

#[test]
fn schedule_supports_every_algorithm_name() {
    let out = temp_path("algos.json");
    let out_str = out.to_str().unwrap();
    commands::generate(&argv(&[
        "generate",
        "--members",
        "120",
        "--events",
        "120",
        "--out",
        out_str,
    ]))
    .unwrap();
    for algo in ["GRD", "GRD-PQ", "TOP", "RAND", "RAND:123", "LS", "SA"] {
        commands::solve(&argv(&[
            "schedule",
            "--dataset",
            out_str,
            "--k",
            "5",
            "--algo",
            algo,
        ]))
        .unwrap_or_else(|e| panic!("algo {algo}: {e}"));
    }
    let err = commands::solve(&argv(&[
        "schedule",
        "--dataset",
        out_str,
        "--k",
        "5",
        "--algo",
        "BOGUS",
    ]))
    .unwrap_err();
    assert!(
        err.contains("unknown scheduler") && err.contains("GRD"),
        "registry error must list valid specs: {err}"
    );
    std::fs::remove_file(out).ok();
}

#[test]
fn schedule_with_checkin_sigma_flag() {
    let out = temp_path("checkins.json");
    let out_str = out.to_str().unwrap();
    commands::generate(&argv(&[
        "generate",
        "--members",
        "150",
        "--events",
        "130",
        "--out",
        out_str,
    ]))
    .unwrap();
    commands::solve(&argv(&[
        "schedule",
        "--dataset",
        out_str,
        "--k",
        "8",
        "--checkins",
    ]))
    .expect("checkins sigma mode works");
    std::fs::remove_file(out).ok();
}

#[test]
fn solve_format_json_and_schedule_alias() {
    let out = temp_path("format.json");
    let out_str = out.to_str().unwrap();
    commands::generate(&argv(&[
        "generate",
        "--members",
        "120",
        "--events",
        "120",
        "--out",
        out_str,
    ]))
    .unwrap();
    // `--format json` succeeds and rejects unknown formats; the old
    // `schedule` spelling still reaches the same implementation.
    commands::solve(&argv(&[
        "solve",
        "--dataset",
        out_str,
        "--k",
        "5",
        "--format",
        "json",
    ]))
    .expect("solve --format json succeeds");
    let err = commands::solve(&argv(&[
        "solve",
        "--dataset",
        out_str,
        "--k",
        "5",
        "--format",
        "yaml",
    ]))
    .unwrap_err();
    assert!(err.contains("unknown format"));
    std::fs::remove_file(out).ok();
}

#[test]
fn simulate_format_json_runs() {
    commands::simulate(&argv(&[
        "simulate",
        "--scenario",
        "steady",
        "--steps",
        "120",
        "--seed",
        "3",
        "--users",
        "60",
        "--events",
        "18",
        "--intervals",
        "6",
        "--k",
        "6",
        "--format",
        "json",
    ]))
    .expect("simulate --format json succeeds");
}

#[test]
fn quality_command_runs() {
    commands::quality(&argv(&["quality", "--instances", "4", "--k", "3"]))
        .expect("quality succeeds");
}

#[test]
fn missing_dataset_is_a_clean_error() {
    let err =
        commands::analyze(&argv(&["analyze", "--dataset", "/no/such/file.json"])).unwrap_err();
    assert!(err.contains("I/O") || err.contains("No such file") || !err.is_empty());
    let err = commands::generate(&argv(&["generate"])).unwrap_err();
    assert!(err.contains("--out"));
}

#[test]
fn simulate_runs_every_scenario_deterministically() {
    for scenario in ["steady", "flash-crowd", "adversarial", "seasonal"] {
        commands::simulate(&argv(&[
            "simulate",
            "--scenario",
            scenario,
            "--steps",
            "150",
            "--seed",
            "7",
            "--users",
            "80",
            "--events",
            "20",
            "--intervals",
            "8",
            "--k",
            "8",
        ]))
        .unwrap_or_else(|e| panic!("scenario {scenario}: {e}"));
    }
}

#[test]
fn simulate_rejects_unknown_scenario() {
    let err = commands::simulate(&argv(&[
        "simulate",
        "--scenario",
        "earthquake",
        "--steps",
        "10",
    ]))
    .unwrap_err();
    assert!(err.contains("unknown scenario"));
}
