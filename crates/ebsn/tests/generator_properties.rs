//! Property tests of the EBSN generator: every configuration in a broad
//! envelope must produce a dataset that validates and preserves the
//! structural invariants the pipeline relies on.

use proptest::prelude::*;
use ses_ebsn::checkins::SLOTS_PER_WEEK;
use ses_ebsn::{
    estimate_slot_activity, generate, interest_stats, overlap_stats, GeneratorConfig,
    SmoothingConfig,
};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        10usize..200, // members
        1usize..15,   // groups
        1usize..10,   // venues
        5usize..100,  // events
        1u64..12,     // weeks
        any::<u64>(), // seed
        1.2f64..4.0,  // mean groups/member
    )
        .prop_map(
            |(num_members, num_groups, num_venues, num_events, horizon_weeks, seed, mean)| {
                GeneratorConfig {
                    num_members,
                    num_groups,
                    num_venues,
                    num_events,
                    horizon_weeks,
                    seed,
                    mean_groups_per_member: mean,
                    ..GeneratorConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_always_validate(cfg in config_strategy()) {
        let ds = generate(&cfg);
        prop_assert!(ds.validate().is_ok());
        prop_assert_eq!(ds.members.len(), cfg.num_members);
        prop_assert_eq!(ds.groups.len(), cfg.num_groups);
        prop_assert_eq!(ds.events.len(), cfg.num_events);
        prop_assert_eq!(ds.horizon_ticks, cfg.horizon_weeks * 7 * 24 * 60);
    }

    #[test]
    fn rosters_and_memberships_are_mutually_consistent(cfg in config_strategy()) {
        let ds = generate(&cfg);
        for m in &ds.members {
            prop_assert!(!m.groups.is_empty(), "every member joins ≥ 1 group");
            for &g in &m.groups {
                prop_assert!(ds.groups[g.index()].members.contains(&m.id));
            }
        }
        let roster_total: usize = ds.groups.iter().map(|g| g.members.len()).sum();
        let membership_total: usize = ds.members.iter().map(|m| m.groups.len()).sum();
        prop_assert_eq!(roster_total, membership_total);
    }

    #[test]
    fn events_inherit_tags_and_respect_horizon(cfg in config_strategy()) {
        let ds = generate(&cfg);
        for e in &ds.events {
            prop_assert_eq!(&e.tags, &ds.groups[e.group.index()].tags);
            prop_assert!(e.end() <= ds.horizon_ticks);
            prop_assert!(e.duration >= 60 && e.duration <= 120);
        }
    }

    #[test]
    fn rsvps_reference_group_members_only(cfg in config_strategy()) {
        let ds = generate(&cfg);
        for r in &ds.rsvps {
            let event = &ds.events[r.event.index()];
            let member = &ds.members[r.member.index()];
            prop_assert!(
                member.groups.contains(&event.group),
                "RSVPs come from the organizing group's roster"
            );
        }
    }

    #[test]
    fn analysis_and_activity_stay_in_range(cfg in config_strategy()) {
        let ds = generate(&cfg);
        let o = overlap_stats(&ds);
        prop_assert!(o.mean_concurrent >= 0.0);
        prop_assert!(o.temporal_conflict_fraction >= o.spatiotemporal_conflict_fraction);
        prop_assert!(o.temporal_conflict_fraction <= 1.0);
        let i = interest_stats(&ds, 500, cfg.seed);
        prop_assert!((0.0..=1.0).contains(&i.nonzero_fraction));
        prop_assert!(i.mean_interest <= i.mean_nonzero_interest + 1e-12);
        let profile = estimate_slot_activity(&ds, SmoothingConfig::default());
        prop_assert_eq!(profile.len(), ds.members.len() * SLOTS_PER_WEEK);
        prop_assert!(profile.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn generation_is_deterministic(cfg in config_strategy()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.members, b.members);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.rsvps, b.rsvps);
    }
}
