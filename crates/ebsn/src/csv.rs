//! CSV interchange for EBSN datasets.
//!
//! Real Meetup exports arrive as flat tables; this module writes and reads a
//! dataset as a directory of CSV files so external data can be adapted
//! without touching JSON:
//!
//! ```text
//! <dir>/vocabulary.csv   id,name
//! <dir>/members.csv      id,activity_level,tags,groups     (`;`-separated lists)
//! <dir>/groups.csv       id,tags,members
//! <dir>/venues.csv       id,x,y
//! <dir>/events.csv       id,group,venue,start,duration,tags
//! <dir>/rsvps.csv        member,event,attended
//! <dir>/meta.csv         key,value                          (horizon_ticks)
//! ```
//!
//! The writer quotes fields containing commas/quotes/newlines (RFC-4180
//! style); the reader understands the same quoting. No external CSV crate
//! is in the offline dependency set, and the dialect here is deliberately
//! small.

use crate::dataset::{DatasetError, EbsnDataset};
use crate::entities::{
    EbsnEvent, EbsnEventId, Group, GroupId, Member, MemberId, Rsvp, Venue, VenueId,
};
use crate::tags::{Tag, TagSet, TagVocabulary};
use std::fmt::Write as _;
use std::path::Path;

fn io_err(e: impl std::fmt::Display) -> DatasetError {
    DatasetError::Io(e.to_string())
}

/// Quotes a field if needed (RFC-4180).
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Splits one CSV line into fields, honouring quotes.
fn split_line(line: &str) -> Result<Vec<String>, DatasetError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match (c, in_quotes) {
            ('"', false) if field.is_empty() => in_quotes = true,
            ('"', true) => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            (',', false) => {
                fields.push(std::mem::take(&mut field));
            }
            (c, _) => field.push(c),
        }
    }
    if in_quotes {
        return Err(io_err(format!("unterminated quote in CSV line: {line}")));
    }
    fields.push(field);
    Ok(fields)
}

fn tags_field(tags: &TagSet) -> String {
    let mut s = String::new();
    for (i, t) in tags.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        let _ = write!(s, "{}", t.raw());
    }
    s
}

fn parse_tags(field: &str) -> Result<TagSet, DatasetError> {
    if field.is_empty() {
        return Ok(TagSet::new());
    }
    field
        .split(';')
        .map(|t| t.parse::<u32>().map(Tag).map_err(io_err))
        .collect::<Result<TagSet, _>>()
}

fn parse_ids<T, F: Fn(u32) -> T>(field: &str, wrap: F) -> Result<Vec<T>, DatasetError> {
    if field.is_empty() {
        return Ok(Vec::new());
    }
    field
        .split(';')
        .map(|t| t.parse::<u32>().map(&wrap).map_err(io_err))
        .collect()
}

fn write_file(dir: &Path, name: &str, content: &str) -> Result<(), DatasetError> {
    std::fs::write(dir.join(name), content).map_err(io_err)
}

fn read_rows(dir: &Path, name: &str, columns: usize) -> Result<Vec<Vec<String>>, DatasetError> {
    let text = std::fs::read_to_string(dir.join(name)).map_err(io_err)?;
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header / trailing newline
        }
        let fields = split_line(line)?;
        if fields.len() != columns {
            return Err(io_err(format!(
                "{name}:{}: expected {columns} fields, got {}",
                i + 1,
                fields.len()
            )));
        }
        rows.push(fields);
    }
    Ok(rows)
}

/// Writes the dataset as CSV files under `dir` (created if missing).
pub fn export_csv(dataset: &EbsnDataset, dir: impl AsRef<Path>) -> Result<(), DatasetError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(io_err)?;

    let mut vocab = String::from("id,name\n");
    for i in 0..dataset.vocabulary.len() {
        let name = dataset.vocabulary.name(Tag(i as u32)).unwrap_or("");
        let _ = writeln!(vocab, "{i},{}", quote(name));
    }
    write_file(dir, "vocabulary.csv", &vocab)?;

    let mut members = String::from("id,activity_level,tags,groups\n");
    for m in &dataset.members {
        let groups = m
            .groups
            .iter()
            .map(|g| g.raw().to_string())
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(
            members,
            "{},{},{},{}",
            m.id.raw(),
            m.activity_level,
            tags_field(&m.tags),
            groups
        );
    }
    write_file(dir, "members.csv", &members)?;

    let mut groups = String::from("id,tags,members\n");
    for g in &dataset.groups {
        let roster = g
            .members
            .iter()
            .map(|m| m.raw().to_string())
            .collect::<Vec<_>>()
            .join(";");
        let _ = writeln!(groups, "{},{},{}", g.id.raw(), tags_field(&g.tags), roster);
    }
    write_file(dir, "groups.csv", &groups)?;

    let mut venues = String::from("id,x,y\n");
    for v in &dataset.venues {
        let _ = writeln!(venues, "{},{},{}", v.id.raw(), v.x, v.y);
    }
    write_file(dir, "venues.csv", &venues)?;

    let mut events = String::from("id,group,venue,start,duration,tags\n");
    for e in &dataset.events {
        let _ = writeln!(
            events,
            "{},{},{},{},{},{}",
            e.id.raw(),
            e.group.raw(),
            e.venue.raw(),
            e.start,
            e.duration,
            tags_field(&e.tags)
        );
    }
    write_file(dir, "events.csv", &events)?;

    let mut rsvps = String::from("member,event,attended\n");
    for r in &dataset.rsvps {
        let _ = writeln!(rsvps, "{},{},{}", r.member.raw(), r.event.raw(), r.attended);
    }
    write_file(dir, "rsvps.csv", &rsvps)?;

    write_file(
        dir,
        "meta.csv",
        &format!("key,value\nhorizon_ticks,{}\n", dataset.horizon_ticks),
    )
}

/// Reads a dataset from CSV files under `dir` and validates it.
pub fn import_csv(dir: impl AsRef<Path>) -> Result<EbsnDataset, DatasetError> {
    let dir = dir.as_ref();

    let mut vocabulary = TagVocabulary::new();
    for row in read_rows(dir, "vocabulary.csv", 2)? {
        vocabulary.intern(&row[1]);
    }

    let members = read_rows(dir, "members.csv", 4)?
        .into_iter()
        .map(|row| {
            Ok(Member {
                id: MemberId(row[0].parse().map_err(io_err)?),
                activity_level: row[1].parse().map_err(io_err)?,
                tags: parse_tags(&row[2])?,
                groups: parse_ids(&row[3], GroupId)?,
            })
        })
        .collect::<Result<Vec<_>, DatasetError>>()?;

    let groups = read_rows(dir, "groups.csv", 3)?
        .into_iter()
        .map(|row| {
            Ok(Group {
                id: GroupId(row[0].parse().map_err(io_err)?),
                tags: parse_tags(&row[1])?,
                members: parse_ids(&row[2], MemberId)?,
            })
        })
        .collect::<Result<Vec<_>, DatasetError>>()?;

    let venues = read_rows(dir, "venues.csv", 3)?
        .into_iter()
        .map(|row| {
            Ok(Venue {
                id: VenueId(row[0].parse().map_err(io_err)?),
                x: row[1].parse().map_err(io_err)?,
                y: row[2].parse().map_err(io_err)?,
            })
        })
        .collect::<Result<Vec<_>, DatasetError>>()?;

    let events = read_rows(dir, "events.csv", 6)?
        .into_iter()
        .map(|row| {
            Ok(EbsnEvent {
                id: EbsnEventId(row[0].parse().map_err(io_err)?),
                group: GroupId(row[1].parse().map_err(io_err)?),
                venue: VenueId(row[2].parse().map_err(io_err)?),
                start: row[3].parse().map_err(io_err)?,
                duration: row[4].parse().map_err(io_err)?,
                tags: parse_tags(&row[5])?,
            })
        })
        .collect::<Result<Vec<_>, DatasetError>>()?;

    let rsvps = read_rows(dir, "rsvps.csv", 3)?
        .into_iter()
        .map(|row| {
            Ok(Rsvp {
                member: MemberId(row[0].parse().map_err(io_err)?),
                event: EbsnEventId(row[1].parse().map_err(io_err)?),
                attended: row[2].parse().map_err(io_err)?,
            })
        })
        .collect::<Result<Vec<_>, DatasetError>>()?;

    let mut horizon_ticks = 0u64;
    for row in read_rows(dir, "meta.csv", 2)? {
        if row[0] == "horizon_ticks" {
            horizon_ticks = row[1].parse().map_err(io_err)?;
        }
    }

    let dataset = EbsnDataset {
        vocabulary,
        members,
        groups,
        venues,
        events,
        rsvps,
        horizon_ticks,
    };
    dataset.validate()?;
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn quote_and_split_are_inverse() {
        for field in ["plain", "with,comma", "with\"quote", "with\nnewline", ""] {
            let line = format!("{},tail", quote(field));
            let parsed = split_line(&line).unwrap();
            assert_eq!(parsed, vec![field.to_owned(), "tail".to_owned()]);
        }
    }

    #[test]
    fn split_rejects_unterminated_quote() {
        assert!(split_line("\"broken").is_err());
    }

    #[test]
    fn tags_roundtrip() {
        let tags = TagSet::from_tags(&[Tag(3), Tag(1), Tag(7)]);
        let parsed = parse_tags(&tags_field(&tags)).unwrap();
        assert_eq!(parsed, tags);
        assert_eq!(parse_tags("").unwrap(), TagSet::new());
        assert!(parse_tags("1;x;3").is_err());
    }

    #[test]
    fn full_dataset_roundtrip() {
        let ds = generate(&GeneratorConfig {
            num_members: 50,
            num_groups: 8,
            num_venues: 5,
            num_events: 30,
            ..GeneratorConfig::default()
        });
        let dir = std::env::temp_dir().join("ses_csv_roundtrip");
        export_csv(&ds, &dir).unwrap();
        let back = import_csv(&dir).unwrap();
        assert_eq!(back.members, ds.members);
        assert_eq!(back.groups, ds.groups);
        assert_eq!(back.venues.len(), ds.venues.len());
        assert_eq!(back.events, ds.events);
        assert_eq!(back.rsvps, ds.rsvps);
        assert_eq!(back.horizon_ticks, ds.horizon_ticks);
        assert_eq!(back.vocabulary.len(), ds.vocabulary.len());
        assert_eq!(back.vocabulary.get("hiking"), ds.vocabulary.get("hiking"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_validates_integrity() {
        let ds = generate(&GeneratorConfig {
            num_members: 10,
            num_groups: 3,
            num_venues: 2,
            num_events: 5,
            ..GeneratorConfig::default()
        });
        let dir = std::env::temp_dir().join("ses_csv_invalid");
        export_csv(&ds, &dir).unwrap();
        // Corrupt events.csv: point the first event's group at id 999.
        let path = dir.join("events.csv");
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        let mut fields = split_line(lines[1]).unwrap();
        fields[1] = "999".to_owned();
        let rebuilt = fields.join(",");
        lines[1] = &rebuilt;
        std::fs::write(&path, lines.join("\n")).unwrap();
        let err = import_csv(&dir).unwrap_err();
        assert!(matches!(err, DatasetError::DanglingReference { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_rejects_wrong_column_count() {
        let dir = std::env::temp_dir().join("ses_csv_columns");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("vocabulary.csv"), "id,name\n0\n").unwrap();
        let err = import_csv(&dir).unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
