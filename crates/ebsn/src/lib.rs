//! # ses-ebsn — an event-based social network substrate
//!
//! The SES paper evaluates on a Meetup dump (Pham et al., ICDE 2015) that is
//! not redistributable. This crate is the substitute substrate: a full
//! Meetup-like network model — members, groups, venues, events, tags and
//! RSVPs — with
//!
//! * a calibrated synthetic [`generator`] (Zipf topics, preferential-
//!   attachment memberships, evening-skewed events),
//! * the paper's tag-based Jaccard interest methodology ([`similarity`]),
//! * check-in based activity estimation ([`activity`]) feeding
//!   `ses_core::SlotActivity`,
//! * the dataset statistics the paper cites ([`analysis`]): mean concurrent
//!   events (their 8.1), spatio-temporal conflict rates, interest sparsity,
//! * JSON persistence ([`dataset`]) so real Meetup exports can be adapted.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activity;
pub mod analysis;
pub mod checkins;
pub mod csv;
pub mod dataset;
pub mod entities;
pub mod generator;
pub mod similarity;
pub mod tags;

pub use activity::{estimate_slot_activity, mean_activity_by_slot, SmoothingConfig};
pub use analysis::{
    group_size_histogram, interest_stats, overlap_stats, InterestStats, OverlapStats,
};
pub use checkins::{slot_label, slot_of_tick, weeks_in_horizon, SLOTS_PER_WEEK};
pub use csv::{export_csv, import_csv};
pub use dataset::{DatasetError, EbsnDataset};
pub use entities::{
    EbsnEvent, EbsnEventId, Group, GroupId, Member, MemberId, Rsvp, Venue, VenueId,
};
pub use generator::{generate, GeneratorConfig};
pub use similarity::{dice, jaccard, weighted_jaccard};
pub use tags::{Tag, TagSet, TagVocabulary};
