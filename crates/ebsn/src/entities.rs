//! EBSN domain entities: members, groups, venues, events, RSVPs.
//!
//! Mirrors the structure of the Meetup dump used by the paper (via Pham et
//! al.\[9\]): users join groups, groups carry topic tags, events are
//! organized by groups at venues, and members RSVP / check in to events.

use crate::tags::TagSet;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw dense index.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize` for array indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A member (user) of the network.
    MemberId,
    "m"
);
define_id!(
    /// A group (community organizing events).
    GroupId,
    "g"
);
define_id!(
    /// A venue (physical location hosting events).
    VenueId,
    "v"
);
define_id!(
    /// An event in the network.
    EbsnEventId,
    "ev"
);

/// A member: tag profile, group memberships, and a latent activity level
/// used when simulating RSVPs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Member {
    /// Dense id.
    pub id: MemberId,
    /// The member's interest tags (union of group topics + personal picks).
    pub tags: TagSet,
    /// Groups the member belongs to.
    pub groups: Vec<GroupId>,
    /// Latent propensity to go out at all, in `[0,1]`.
    pub activity_level: f64,
}

/// A group: topic tags and member roster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Dense id.
    pub id: GroupId,
    /// The group's declared topics.
    pub tags: TagSet,
    /// Members of the group.
    pub members: Vec<MemberId>,
}

/// A venue with planar coordinates (used for spatial conflict statistics).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Venue {
    /// Dense id.
    pub id: VenueId,
    /// X coordinate (arbitrary planar units).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Venue {
    /// Euclidean distance to another venue.
    pub fn distance(&self, other: &Venue) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An event organized by a group at a venue.
///
/// Per the paper's methodology, `tags` are inherited from the organizing
/// group; times are ticks (minutes) since the dataset horizon start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EbsnEvent {
    /// Dense id.
    pub id: EbsnEventId,
    /// Organizing group.
    pub group: GroupId,
    /// Hosting venue.
    pub venue: VenueId,
    /// Start tick (minutes since horizon start).
    pub start: u64,
    /// Duration in ticks.
    pub duration: u64,
    /// Topic tags (inherited from the group).
    pub tags: TagSet,
}

impl EbsnEvent {
    /// Exclusive end tick.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.duration
    }

    /// Whether two events overlap in time (half-open).
    #[inline]
    pub fn overlaps_in_time(&self, other: &EbsnEvent) -> bool {
        self.start < other.end() && other.start < self.end()
    }
}

/// An RSVP / check-in record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rsvp {
    /// Who.
    pub member: MemberId,
    /// To which event.
    pub event: EbsnEventId,
    /// Whether the member actually checked in (vs. RSVP'd and skipped).
    pub attended: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::Tag;

    #[test]
    fn event_time_semantics() {
        let mk = |start, duration| EbsnEvent {
            id: EbsnEventId(0),
            group: GroupId(0),
            venue: VenueId(0),
            start,
            duration,
            tags: TagSet::new(),
        };
        let a = mk(0, 100);
        let b = mk(100, 50);
        let c = mk(99, 2);
        assert_eq!(a.end(), 100);
        assert!(!a.overlaps_in_time(&b), "touching events do not overlap");
        assert!(a.overlaps_in_time(&c));
        assert!(c.overlaps_in_time(&b));
    }

    #[test]
    fn venue_distance() {
        let a = Venue {
            id: VenueId(0),
            x: 0.0,
            y: 0.0,
        };
        let b = Venue {
            id: VenueId(1),
            x: 3.0,
            y: 4.0,
        };
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(MemberId(1).to_string(), "m1");
        assert_eq!(GroupId(2).to_string(), "g2");
        assert_eq!(VenueId(3).to_string(), "v3");
        assert_eq!(EbsnEventId(4).to_string(), "ev4");
    }

    #[test]
    fn serde_roundtrip() {
        let member = Member {
            id: MemberId(7),
            tags: TagSet::from_iter([Tag(1), Tag(2)]),
            groups: vec![GroupId(0)],
            activity_level: 0.4,
        };
        let json = serde_json::to_string(&member).unwrap();
        let back: Member = serde_json::from_str(&json).unwrap();
        assert_eq!(back, member);
    }
}
