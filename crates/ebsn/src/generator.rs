//! Synthetic Meetup-like dataset generator.
//!
//! The paper evaluates on the Meetup-California dump of Pham et al.\[9\]
//! (42,444 users, ~16K events after preprocessing), which is not
//! redistributable here. This generator produces a structurally equivalent
//! network:
//!
//! * topic popularity is Zipf-skewed (a few huge topics, a long tail);
//! * group memberships follow preferential attachment (Zipf over groups);
//! * users inherit tags from the groups they join, plus personal picks —
//!   so user–event Jaccard interest is sparse with a heavy tail, like the
//!   real dump;
//! * events are organized by groups (tags inherited), concentrated in the
//!   evenings, spread over a configurable horizon;
//! * RSVPs are driven by latent per-user activity × tag similarity, giving
//!   check-in histories from which `σ(u,t)` can be estimated.
//!
//! Calibration targets (checked in `analysis.rs` tests): the mean number of
//! temporally overlapping events matches the ~8.1 statistic the paper
//! extracts from the Meetup data.

use crate::checkins::{TICKS_PER_DAY, TICKS_PER_HOUR, TICKS_PER_WEEK};
use crate::dataset::EbsnDataset;
use crate::entities::{
    EbsnEvent, EbsnEventId, Group, GroupId, Member, MemberId, Rsvp, Venue, VenueId,
};
use crate::similarity::jaccard;
use crate::tags::{Tag, TagSet, TagVocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Beta, Distribution, Poisson, Zipf};

/// Knobs of the synthetic network.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of members.
    pub num_members: usize,
    /// Number of groups.
    pub num_groups: usize,
    /// Number of venues.
    pub num_venues: usize,
    /// Number of events.
    pub num_events: usize,
    /// Horizon length in weeks.
    pub horizon_weeks: u64,
    /// Inclusive range of tags per group.
    pub tags_per_group: (usize, usize),
    /// Inclusive range of extra personal tags per member.
    pub personal_tags: (usize, usize),
    /// Mean number of groups a member joins.
    pub mean_groups_per_member: f64,
    /// Zipf exponent for topic popularity (higher = more skew).
    pub topic_exponent: f64,
    /// Zipf exponent for group popularity.
    pub group_exponent: f64,
    /// Global scale on RSVP probability.
    pub rsvp_rate: f64,
    /// RNG seed — everything is deterministic given the config.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    /// A small, fast configuration for tests and examples.
    fn default() -> Self {
        Self {
            num_members: 300,
            num_groups: 40,
            num_venues: 25,
            num_events: 200,
            horizon_weeks: 8,
            tags_per_group: (2, 5),
            personal_tags: (1, 2),
            mean_groups_per_member: 3.0,
            topic_exponent: 0.7,
            group_exponent: 1.05,
            rsvp_rate: 0.8,
            seed: 0,
        }
    }
}

impl GeneratorConfig {
    /// Paper-scale preset mirroring the Meetup-California dump: 42,444 users
    /// and 16K events over a year.
    pub fn meetup_california() -> Self {
        Self {
            num_members: 42_444,
            num_groups: 2_000,
            num_venues: 600,
            num_events: 16_000,
            horizon_weeks: 52,
            ..Self::default()
        }
    }

    /// A scaled-down copy keeping the structural ratios of
    /// [`Self::meetup_california`] but with `num_members` users. Used by the
    /// figure harness to keep sweep runtimes laptop-friendly (documented in
    /// EXPERIMENTS.md; GRD cost is linear in `|U|`).
    pub fn meetup_california_scaled(num_members: usize) -> Self {
        let full = Self::meetup_california();
        let ratio = num_members as f64 / full.num_members as f64;
        Self {
            num_members,
            num_groups: ((full.num_groups as f64 * ratio).ceil() as usize).max(20),
            num_venues: ((full.num_venues as f64 * ratio).ceil() as usize).max(10),
            num_events: ((full.num_events as f64 * ratio).ceil() as usize).max(100),
            ..full
        }
    }
}

struct Gen<'a> {
    cfg: &'a GeneratorConfig,
    rng: StdRng,
    vocabulary: TagVocabulary,
}

impl Gen<'_> {
    fn sample_tags(&mut self, count: usize) -> TagSet {
        let vocab_len = self.vocabulary.len() as u64;
        let zipf = Zipf::new(vocab_len, self.cfg.topic_exponent).expect("valid Zipf");
        let mut set = TagSet::new();
        let mut guard = 0;
        while set.len() < count && guard < count * 20 {
            let idx = zipf.sample(&mut self.rng) as u64 - 1;
            set.insert(Tag(idx as u32));
            guard += 1;
        }
        set
    }

    fn groups(&mut self) -> Vec<Group> {
        let (lo, hi) = self.cfg.tags_per_group;
        (0..self.cfg.num_groups)
            .map(|g| {
                let count = self.rng.gen_range(lo..=hi);
                Group {
                    id: GroupId(g as u32),
                    tags: self.sample_tags(count),
                    members: Vec::new(),
                }
            })
            .collect()
    }

    fn members(&mut self, groups: &mut [Group]) -> Vec<Member> {
        let group_zipf =
            Zipf::new(groups.len() as u64, self.cfg.group_exponent).expect("valid Zipf");
        let poisson =
            Poisson::new((self.cfg.mean_groups_per_member - 1.0).max(0.1)).expect("valid Poisson");
        let beta = Beta::new(2.0, 5.0).expect("valid Beta");
        let (plo, phi) = self.cfg.personal_tags;
        (0..self.cfg.num_members)
            .map(|m| {
                let id = MemberId(m as u32);
                let count = (1.0 + poisson.sample(&mut self.rng)).min(groups.len() as f64) as usize;
                let mut joined: Vec<GroupId> = Vec::with_capacity(count);
                let mut guard = 0;
                while joined.len() < count && guard < count * 20 {
                    let g = GroupId(group_zipf.sample(&mut self.rng) as u32 - 1);
                    if !joined.contains(&g) {
                        joined.push(g);
                    }
                    guard += 1;
                }
                joined.sort_unstable();
                // Tags: a 40% subsample of each joined group's tags, plus a
                // few personal picks. Keeping profiles small keeps Jaccard
                // interest sparse, matching the real Meetup dump.
                let mut tags = TagSet::new();
                for g in &joined {
                    for tag in groups[g.index()].tags.iter() {
                        if self.rng.gen_bool(0.4) {
                            tags.insert(tag);
                        }
                    }
                    groups[g.index()].members.push(id);
                }
                let personal = self.rng.gen_range(plo..=phi);
                for tag in self.sample_tags(personal).iter() {
                    tags.insert(tag);
                }
                Member {
                    id,
                    tags,
                    groups: joined,
                    activity_level: beta.sample(&mut self.rng),
                }
            })
            .collect()
    }

    fn venues(&mut self) -> Vec<Venue> {
        (0..self.cfg.num_venues)
            .map(|v| Venue {
                id: VenueId(v as u32),
                x: self.rng.gen_range(0.0..100.0),
                y: self.rng.gen_range(0.0..100.0),
            })
            .collect()
    }

    fn events(&mut self, groups: &[Group]) -> Vec<EbsnEvent> {
        let group_zipf =
            Zipf::new(groups.len() as u64, self.cfg.group_exponent).expect("valid Zipf");
        let horizon = self.cfg.horizon_weeks * TICKS_PER_WEEK;
        (0..self.cfg.num_events)
            .map(|e| {
                let group = GroupId(group_zipf.sample(&mut self.rng) as u32 - 1);
                let venue = VenueId(self.rng.gen_range(0..self.cfg.num_venues) as u32);
                let week = self.rng.gen_range(0..self.cfg.horizon_weeks);
                let day = self.rng.gen_range(0..7u64);
                // Events skew to evenings: 50% evening, 30% afternoon, 20%
                // morning; minute jitter spreads starts within the hour.
                let r: f64 = self.rng.gen();
                let start_hour: u64 = if r < 0.50 {
                    self.rng.gen_range(17..23)
                } else if r < 0.80 {
                    self.rng.gen_range(12..17)
                } else {
                    self.rng.gen_range(7..12)
                };
                let minute = self.rng.gen_range(0..60u64);
                let duration = self.rng.gen_range(60..=120u64);
                let start = (week * TICKS_PER_WEEK
                    + day * TICKS_PER_DAY
                    + start_hour * TICKS_PER_HOUR
                    + minute)
                    .min(horizon.saturating_sub(duration));
                EbsnEvent {
                    id: EbsnEventId(e as u32),
                    group,
                    venue,
                    start,
                    duration,
                    tags: groups[group.index()].tags.clone(),
                }
            })
            .collect()
    }

    fn rsvps(&mut self, members: &[Member], groups: &[Group], events: &[EbsnEvent]) -> Vec<Rsvp> {
        let mut rsvps = Vec::new();
        for event in events {
            for &m in &groups[event.group.index()].members {
                let member = &members[m.index()];
                let sim = jaccard(&member.tags, &event.tags);
                let p = (member.activity_level * (0.3 + 0.7 * sim) * self.cfg.rsvp_rate)
                    .clamp(0.0, 1.0);
                if self.rng.gen_bool(p) {
                    rsvps.push(Rsvp {
                        member: m,
                        event: event.id,
                        attended: self.rng.gen_bool(0.8),
                    });
                }
            }
        }
        rsvps
    }
}

/// Generates a dataset from the configuration. Deterministic in
/// `config.seed`; the output always passes [`EbsnDataset::validate`].
pub fn generate(config: &GeneratorConfig) -> EbsnDataset {
    assert!(config.num_groups > 0, "need at least one group");
    assert!(config.num_venues > 0, "need at least one venue");
    let mut gen = Gen {
        cfg: config,
        rng: StdRng::seed_from_u64(config.seed),
        vocabulary: TagVocabulary::builtin(),
    };
    let mut groups = gen.groups();
    let members = gen.members(&mut groups);
    let venues = gen.venues();
    let events = gen.events(&groups);
    let rsvps = gen.rsvps(&members, &groups, &events);
    let dataset = EbsnDataset {
        vocabulary: gen.vocabulary,
        members,
        groups,
        venues,
        events,
        rsvps,
        horizon_ticks: config.horizon_weeks * TICKS_PER_WEEK,
    };
    debug_assert!(dataset.validate().is_ok());
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_valid_dataset() {
        let ds = generate(&GeneratorConfig::default());
        ds.validate().unwrap();
        assert_eq!(ds.members.len(), 300);
        assert_eq!(ds.events.len(), 200);
        assert!(!ds.rsvps.is_empty(), "members should RSVP to some events");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&GeneratorConfig::default());
        let b = generate(&GeneratorConfig::default());
        assert_eq!(a.members, b.members);
        assert_eq!(a.events, b.events);
        assert_eq!(a.rsvps, b.rsvps);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::default());
        let b = generate(&GeneratorConfig {
            seed: 1,
            ..GeneratorConfig::default()
        });
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn members_inherit_group_tags() {
        let ds = generate(&GeneratorConfig::default());
        // A member with at least one group should share tags with it
        // reasonably often; check that *some* member does.
        let any_overlap = ds.members.iter().any(|m| {
            m.groups
                .iter()
                .any(|g| ds.groups[g.index()].tags.intersection_size(&m.tags) > 0)
        });
        assert!(any_overlap);
    }

    #[test]
    fn rosters_are_consistent_with_memberships() {
        let ds = generate(&GeneratorConfig::default());
        for g in &ds.groups {
            for &m in &g.members {
                assert!(
                    ds.members[m.index()].groups.contains(&g.id),
                    "roster of {} lists {} but the member does not list the group",
                    g.id,
                    m
                );
            }
        }
        for m in &ds.members {
            for &g in &m.groups {
                assert!(ds.groups[g.index()].members.contains(&m.id));
            }
        }
    }

    #[test]
    fn events_inherit_group_tags_and_fit_horizon() {
        let ds = generate(&GeneratorConfig::default());
        for e in &ds.events {
            assert_eq!(e.tags, ds.groups[e.group.index()].tags);
            assert!(e.end() <= ds.horizon_ticks);
        }
    }

    #[test]
    fn group_popularity_is_skewed() {
        let ds = generate(&GeneratorConfig::default());
        let mut sizes: Vec<usize> = ds.groups.iter().map(|g| g.members.len()).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let top = sizes.iter().take(4).sum::<usize>() as f64;
        let total = sizes.iter().sum::<usize>() as f64;
        assert!(
            top / total > 0.2,
            "top-4 of 40 groups should hold well over 10% of memberships (got {:.2})",
            top / total
        );
    }

    #[test]
    fn activity_levels_are_probabilities() {
        let ds = generate(&GeneratorConfig::default());
        assert!(ds
            .members
            .iter()
            .all(|m| (0.0..=1.0).contains(&m.activity_level)));
    }

    #[test]
    fn scaled_preset_keeps_ratios() {
        let scaled = GeneratorConfig::meetup_california_scaled(4000);
        assert_eq!(scaled.num_members, 4000);
        // ~ 4000/42444 of 16000 events ≈ 1500
        assert!(scaled.num_events >= 1000 && scaled.num_events <= 2200);
        assert!(scaled.num_groups >= 150);
    }
}
