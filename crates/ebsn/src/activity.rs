//! Estimating the social-activity probability `σ(u, slot)` from check-ins.
//!
//! For each member and weekly slot, the estimate is
//!
//! ```text
//! σ̂(u, s) = min(1, checkins(u, s) / weeks_observed)
//! ```
//!
//! optionally smoothed with Laplace pseudo-counts so that members with thin
//! histories do not collapse to hard 0/1 probabilities. The result plugs
//! directly into `ses_core::SlotActivity`.

use crate::checkins::{slot_of_tick, weeks_in_horizon, SLOTS_PER_WEEK};
use crate::dataset::EbsnDataset;

/// Smoothing for [`estimate_slot_activity`].
#[derive(Debug, Clone, Copy)]
pub struct SmoothingConfig {
    /// Pseudo-count added to every slot's check-in count.
    pub alpha: f64,
    /// Pseudo-weeks added to the denominator.
    pub beta: f64,
}

impl Default for SmoothingConfig {
    fn default() -> Self {
        // One phantom check-in spread over four phantom weeks: keeps thin
        // histories near a plausible base rate instead of exactly 0.
        Self {
            alpha: 0.25,
            beta: 4.0,
        }
    }
}

/// Per-member × per-slot activity estimates, row-major
/// (`profile[member * SLOTS_PER_WEEK + slot]`), each in `[0,1]`.
pub fn estimate_slot_activity(dataset: &EbsnDataset, smoothing: SmoothingConfig) -> Vec<f64> {
    let num_members = dataset.members.len();
    let weeks = weeks_in_horizon(dataset.horizon_ticks) as f64;
    let mut counts = vec![0.0f64; num_members * SLOTS_PER_WEEK];
    for rsvp in &dataset.rsvps {
        if !rsvp.attended {
            continue; // only realized check-ins signal availability
        }
        let event = &dataset.events[rsvp.event.index()];
        let slot = slot_of_tick(event.start);
        counts[rsvp.member.index() * SLOTS_PER_WEEK + slot] += 1.0;
    }
    counts
        .iter()
        .map(|&c| ((c + smoothing.alpha) / (weeks + smoothing.beta)).clamp(0.0, 1.0))
        .collect()
}

/// Mean activity per slot across all members (for dataset reports).
pub fn mean_activity_by_slot(profile: &[f64]) -> [f64; SLOTS_PER_WEEK] {
    let mut out = [0.0; SLOTS_PER_WEEK];
    if profile.is_empty() {
        return out;
    }
    let members = profile.len() / SLOTS_PER_WEEK;
    for m in 0..members {
        for (s, slot_mean) in out.iter_mut().enumerate() {
            *slot_mean += profile[m * SLOTS_PER_WEEK + s];
        }
    }
    for slot_mean in &mut out {
        *slot_mean /= members as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkins::TICKS_PER_WEEK;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn estimates_are_probabilities() {
        let ds = generate(&GeneratorConfig::default());
        let profile = estimate_slot_activity(&ds, SmoothingConfig::default());
        assert_eq!(profile.len(), ds.members.len() * SLOTS_PER_WEEK);
        assert!(profile.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn more_checkins_mean_higher_sigma() {
        let ds = generate(&GeneratorConfig::default());
        let profile = estimate_slot_activity(&ds, SmoothingConfig::default());
        // Count attended check-ins per member; the most active member must
        // not have a uniformly smaller profile than the least active one.
        let mut attended = vec![0usize; ds.members.len()];
        for r in &ds.rsvps {
            if r.attended {
                attended[r.member.index()] += 1;
            }
        }
        let most = attended
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap();
        let none = attended.iter().position(|&c| c == 0);
        let sum_of = |m: usize| -> f64 {
            profile[m * SLOTS_PER_WEEK..(m + 1) * SLOTS_PER_WEEK]
                .iter()
                .sum()
        };
        if let Some(none) = none {
            assert!(
                sum_of(most) > sum_of(none),
                "member with {} check-ins must out-score member with none",
                attended[most]
            );
        }
    }

    #[test]
    fn smoothing_keeps_zero_history_above_zero() {
        let ds = generate(&GeneratorConfig::default());
        let smoothed = estimate_slot_activity(&ds, SmoothingConfig::default());
        assert!(smoothed.iter().all(|&p| p > 0.0));
        let unsmoothed = estimate_slot_activity(
            &ds,
            SmoothingConfig {
                alpha: 0.0,
                beta: 0.0,
            },
        );
        assert!(unsmoothed.contains(&0.0));
    }

    #[test]
    fn evenings_dominate_mornings_on_generated_data() {
        // The generator skews events to evenings, so estimated evening
        // activity should exceed morning activity on average.
        let ds = generate(&GeneratorConfig {
            num_events: 400,
            ..GeneratorConfig::default()
        });
        let profile = estimate_slot_activity(&ds, SmoothingConfig::default());
        let means = mean_activity_by_slot(&profile);
        let evenings: f64 = (0..7).map(|d| means[d * 3 + 2]).sum();
        let mornings: f64 = (0..7).map(|d| means[d * 3]).sum();
        assert!(
            evenings > mornings,
            "evenings {evenings} should exceed mornings {mornings}"
        );
    }

    #[test]
    fn horizon_weeks_scale_the_denominator() {
        let mut ds = generate(&GeneratorConfig::default());
        let short = estimate_slot_activity(&ds, SmoothingConfig::default());
        ds.horizon_ticks *= 4;
        // Same check-ins over 4× the horizon must not raise any estimate.
        let long = estimate_slot_activity(&ds, SmoothingConfig::default());
        assert_eq!(short.len(), long.len());
        assert!(short.iter().zip(&long).all(|(s, l)| l <= s));
        let _ = TICKS_PER_WEEK; // silence unused import in cfg(test)
    }
}
