//! The assembled EBSN dataset: container, integrity validation, and JSON
//! persistence.

use crate::entities::{EbsnEvent, Group, Member, Rsvp, Venue};
use crate::tags::TagVocabulary;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// A complete event-based social network snapshot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EbsnDataset {
    /// The topic vocabulary.
    pub vocabulary: TagVocabulary,
    /// Members (dense ids: `members[i].id == i`).
    pub members: Vec<Member>,
    /// Groups (dense ids).
    pub groups: Vec<Group>,
    /// Venues (dense ids).
    pub venues: Vec<Venue>,
    /// Events (dense ids).
    pub events: Vec<EbsnEvent>,
    /// RSVP / check-in history.
    pub rsvps: Vec<Rsvp>,
    /// Horizon length in ticks (minutes); all event times fall within it.
    pub horizon_ticks: u64,
}

/// Integrity violations detected by [`EbsnDataset::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// `collection[i].id != i`.
    NonDenseIds {
        /// Which collection.
        what: &'static str,
        /// Offending position.
        position: usize,
    },
    /// A reference points outside its target collection.
    DanglingReference {
        /// Which reference kind (e.g. "member.group").
        what: &'static str,
        /// The raw referenced id.
        id: u32,
    },
    /// An event lies (partly) outside the horizon.
    EventOutsideHorizon {
        /// The raw offending event id.
        event: u32,
    },
    /// An activity level or probability is outside `[0,1]`.
    ValueOutOfRange {
        /// Description of the offending field.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// I/O or serialization failure (message only, to keep the type `Clone`).
    Io(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::NonDenseIds { what, position } => {
                write!(f, "{what}[{position}] has non-dense id")
            }
            DatasetError::DanglingReference { what, id } => {
                write!(f, "dangling {what} reference to {id}")
            }
            DatasetError::EventOutsideHorizon { event } => {
                write!(f, "event ev{event} lies outside the dataset horizon")
            }
            DatasetError::ValueOutOfRange { what, value } => {
                write!(f, "{what} = {value} outside [0,1]")
            }
            DatasetError::Io(msg) => write!(f, "dataset I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl EbsnDataset {
    /// Checks referential integrity, dense ids, horizon containment and
    /// value ranges.
    pub fn validate(&self) -> Result<(), DatasetError> {
        for (i, m) in self.members.iter().enumerate() {
            if m.id.index() != i {
                return Err(DatasetError::NonDenseIds {
                    what: "members",
                    position: i,
                });
            }
            if !(0.0..=1.0).contains(&m.activity_level) {
                return Err(DatasetError::ValueOutOfRange {
                    what: "member.activity_level",
                    value: m.activity_level,
                });
            }
            for g in &m.groups {
                if g.index() >= self.groups.len() {
                    return Err(DatasetError::DanglingReference {
                        what: "member.group",
                        id: g.raw(),
                    });
                }
            }
        }
        for (i, g) in self.groups.iter().enumerate() {
            if g.id.index() != i {
                return Err(DatasetError::NonDenseIds {
                    what: "groups",
                    position: i,
                });
            }
            for m in &g.members {
                if m.index() >= self.members.len() {
                    return Err(DatasetError::DanglingReference {
                        what: "group.member",
                        id: m.raw(),
                    });
                }
            }
        }
        for (i, v) in self.venues.iter().enumerate() {
            if v.id.index() != i {
                return Err(DatasetError::NonDenseIds {
                    what: "venues",
                    position: i,
                });
            }
        }
        for (i, e) in self.events.iter().enumerate() {
            if e.id.index() != i {
                return Err(DatasetError::NonDenseIds {
                    what: "events",
                    position: i,
                });
            }
            if e.group.index() >= self.groups.len() {
                return Err(DatasetError::DanglingReference {
                    what: "event.group",
                    id: e.group.raw(),
                });
            }
            if e.venue.index() >= self.venues.len() {
                return Err(DatasetError::DanglingReference {
                    what: "event.venue",
                    id: e.venue.raw(),
                });
            }
            if e.end() > self.horizon_ticks {
                return Err(DatasetError::EventOutsideHorizon { event: e.id.raw() });
            }
        }
        for r in &self.rsvps {
            if r.member.index() >= self.members.len() {
                return Err(DatasetError::DanglingReference {
                    what: "rsvp.member",
                    id: r.member.raw(),
                });
            }
            if r.event.index() >= self.events.len() {
                return Err(DatasetError::DanglingReference {
                    what: "rsvp.event",
                    id: r.event.raw(),
                });
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON at `path`.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), DatasetError> {
        let file = File::create(path).map_err(|e| DatasetError::Io(e.to_string()))?;
        let writer = BufWriter::new(file);
        serde_json::to_writer(writer, self).map_err(|e| DatasetError::Io(e.to_string()))
    }

    /// Loads from JSON at `path`, rebuilds the vocabulary index, validates.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, DatasetError> {
        let file = File::open(path).map_err(|e| DatasetError::Io(e.to_string()))?;
        let reader = BufReader::new(file);
        let mut ds: EbsnDataset =
            serde_json::from_reader(reader).map_err(|e| DatasetError::Io(e.to_string()))?;
        ds.vocabulary.rebuild_index();
        ds.validate()?;
        Ok(ds)
    }

    /// One-line shape summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "{} members, {} groups, {} venues, {} events, {} rsvps, horizon {} ticks",
            self.members.len(),
            self.groups.len(),
            self.venues.len(),
            self.events.len(),
            self.rsvps.len(),
            self.horizon_ticks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{EbsnEventId, GroupId, MemberId, VenueId};
    use crate::tags::TagSet;

    fn tiny() -> EbsnDataset {
        EbsnDataset {
            vocabulary: TagVocabulary::builtin(),
            members: vec![Member {
                id: MemberId(0),
                tags: TagSet::new(),
                groups: vec![GroupId(0)],
                activity_level: 0.5,
            }],
            groups: vec![Group {
                id: GroupId(0),
                tags: TagSet::new(),
                members: vec![MemberId(0)],
            }],
            venues: vec![Venue {
                id: VenueId(0),
                x: 0.0,
                y: 0.0,
            }],
            events: vec![EbsnEvent {
                id: EbsnEventId(0),
                group: GroupId(0),
                venue: VenueId(0),
                start: 0,
                duration: 60,
                tags: TagSet::new(),
            }],
            rsvps: vec![Rsvp {
                member: MemberId(0),
                event: EbsnEventId(0),
                attended: true,
            }],
            horizon_ticks: 1000,
        }
    }

    #[test]
    fn valid_dataset_passes() {
        tiny().validate().unwrap();
    }

    #[test]
    fn detects_dangling_group_reference() {
        let mut ds = tiny();
        ds.members[0].groups.push(GroupId(9));
        assert!(matches!(
            ds.validate().unwrap_err(),
            DatasetError::DanglingReference {
                what: "member.group",
                ..
            }
        ));
    }

    #[test]
    fn detects_event_outside_horizon() {
        let mut ds = tiny();
        ds.events[0].start = 990;
        assert!(matches!(
            ds.validate().unwrap_err(),
            DatasetError::EventOutsideHorizon { event: 0 }
        ));
    }

    #[test]
    fn detects_bad_activity_level() {
        let mut ds = tiny();
        ds.members[0].activity_level = 1.5;
        assert!(matches!(
            ds.validate().unwrap_err(),
            DatasetError::ValueOutOfRange { .. }
        ));
    }

    #[test]
    fn detects_non_dense_ids() {
        let mut ds = tiny();
        ds.events[0].id = EbsnEventId(5);
        assert!(matches!(
            ds.validate().unwrap_err(),
            DatasetError::NonDenseIds { what: "events", .. }
        ));
    }

    #[test]
    fn detects_dangling_rsvp() {
        let mut ds = tiny();
        ds.rsvps.push(Rsvp {
            member: MemberId(4),
            event: EbsnEventId(0),
            attended: false,
        });
        assert!(matches!(
            ds.validate().unwrap_err(),
            DatasetError::DanglingReference {
                what: "rsvp.member",
                ..
            }
        ));
    }

    #[test]
    fn json_roundtrip_via_files() {
        let ds = tiny();
        let dir = std::env::temp_dir().join("ses_ebsn_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        ds.save_json(&path).unwrap();
        let back = EbsnDataset::load_json(&path).unwrap();
        assert_eq!(back.members, ds.members);
        assert_eq!(back.events, ds.events);
        assert_eq!(back.vocabulary.get("hiking"), ds.vocabulary.get("hiking"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_missing_file() {
        let err = EbsnDataset::load_json("/no/such/file.json").unwrap_err();
        assert!(matches!(err, DatasetError::Io(_)));
    }

    #[test]
    fn summary_mentions_shape() {
        let s = tiny().summary();
        assert!(s.contains("1 members"));
        assert!(s.contains("1 events"));
    }
}
