//! Tag-set similarity measures.
//!
//! The paper (§IV-A) computes user–event interest as the Jaccard similarity
//! between the user's tags and the event's (group-inherited) tags — the same
//! approach as She et al.\[11\]–\[13\]. Weighted Jaccard and Dice are provided
//! for sensitivity experiments.

use crate::tags::TagSet;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` (0 when both sets are empty).
pub fn jaccard(a: &TagSet, b: &TagSet) -> f64 {
    let inter = a.intersection_size(b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)` (0 when both sets are empty).
pub fn dice(a: &TagSet, b: &TagSet) -> f64 {
    let inter = a.intersection_size(b);
    let denom = a.len() + b.len();
    if denom == 0 {
        0.0
    } else {
        2.0 * inter as f64 / denom as f64
    }
}

/// Weighted Jaccard: tags contribute `weights[tag]` instead of 1 to both
/// intersection and union. Tags outside `weights` count as weight 0.
pub fn weighted_jaccard(a: &TagSet, b: &TagSet, weights: &[f64]) -> f64 {
    let w = |t: crate::tags::Tag| weights.get(t.raw() as usize).copied().unwrap_or(0.0);
    let mut inter = 0.0;
    let mut union = 0.0;
    let (sa, sb) = (a.as_slice(), b.as_slice());
    let (mut i, mut j) = (0, 0);
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Less => {
                union += w(sa[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union += w(sb[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                inter += w(sa[i]);
                union += w(sa[i]);
                i += 1;
                j += 1;
            }
        }
    }
    for &t in &sa[i..] {
        union += w(t);
    }
    for &t in &sb[j..] {
        union += w(t);
    }
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::Tag;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_iter(ids.iter().map(|&i| Tag(i)))
    }

    #[test]
    fn jaccard_basic_cases() {
        assert_eq!(jaccard(&ts(&[1, 2]), &ts(&[1, 2])), 1.0);
        assert_eq!(jaccard(&ts(&[1, 2]), &ts(&[3, 4])), 0.0);
        assert_eq!(jaccard(&ts(&[1, 2, 3]), &ts(&[2, 3, 4])), 0.5);
        assert_eq!(jaccard(&ts(&[]), &ts(&[])), 0.0);
        assert_eq!(jaccard(&ts(&[1]), &ts(&[])), 0.0);
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded() {
        let a = ts(&[1, 5, 9, 12]);
        let b = ts(&[5, 12, 40]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        let v = jaccard(&a, &b);
        assert!((0.0..=1.0).contains(&v));
        assert_eq!(v, 2.0 / 5.0);
    }

    #[test]
    fn dice_basic_cases() {
        assert_eq!(dice(&ts(&[1, 2]), &ts(&[1, 2])), 1.0);
        assert_eq!(dice(&ts(&[]), &ts(&[])), 0.0);
        assert_eq!(dice(&ts(&[1, 2, 3]), &ts(&[2, 3, 4])), 2.0 * 2.0 / 6.0);
    }

    #[test]
    fn dice_upper_bounds_jaccard() {
        let a = ts(&[1, 2, 3, 7]);
        let b = ts(&[2, 3, 9]);
        assert!(dice(&a, &b) >= jaccard(&a, &b));
    }

    #[test]
    fn weighted_jaccard_reduces_to_jaccard_with_unit_weights() {
        let a = ts(&[1, 2, 3]);
        let b = ts(&[2, 3, 4]);
        let weights = vec![1.0; 10];
        assert!((weighted_jaccard(&a, &b, &weights) - jaccard(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn weighted_jaccard_respects_weights() {
        let a = ts(&[0, 1]);
        let b = ts(&[1, 2]);
        // Tag 1 (shared) weighs 3; tags 0 and 2 weigh 1 → 3 / 5.
        let weights = vec![1.0, 3.0, 1.0];
        assert!((weighted_jaccard(&a, &b, &weights) - 0.6).abs() < 1e-12);
        // Out-of-range tags count as zero weight.
        let c = ts(&[9]);
        assert_eq!(weighted_jaccard(&a, &c, &weights), 0.0);
    }
}
