//! Tag vocabulary and tag sets.
//!
//! Meetup organizes interests as *topics* ("tags"): groups declare tags and
//! the paper's methodology (§IV-A, following She et al.) propagates group
//! tags to the group's events and computes user–event interest as the
//! Jaccard similarity of tag sets. This module supplies the vocabulary and
//! an ordered-set representation tuned for fast intersections.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A tag (topic) id: an index into a [`TagVocabulary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tag(pub u32);

impl Tag {
    /// Raw index.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A curated topic list in the spirit of Meetup's category taxonomy.
/// Ordered roughly by popularity so Zipf-distributed draws over indices give
/// popular-topic skew for free.
const BUILTIN_TOPICS: &[&str] = &[
    "social",
    "networking",
    "hiking",
    "technology",
    "fitness",
    "live-music",
    "photography",
    "food",
    "travel",
    "startups",
    "book-club",
    "yoga",
    "running",
    "board-games",
    "wine",
    "career",
    "meditation",
    "dancing",
    "cycling",
    "entrepreneurship",
    "coffee",
    "art",
    "language-exchange",
    "singles",
    "outdoors",
    "happy-hour",
    "web-development",
    "investing",
    "film",
    "writing",
    "craft-beer",
    "volunteering",
    "rock-music",
    "salsa",
    "camping",
    "machine-learning",
    "marketing",
    "self-improvement",
    "jazz",
    "painting",
    "theater",
    "basketball",
    "soccer",
    "software-engineering",
    "small-business",
    "pop-music",
    "karaoke",
    "cooking",
    "veggie-food",
    "data-science",
    "blockchain",
    "real-estate",
    "poker",
    "spirituality",
    "parenting",
    "dogs",
    "comedy",
    "open-mic",
    "gaming",
    "anime",
    "backpacking",
    "kayaking",
    "climbing",
    "surfing",
    "tennis",
    "golf",
    "pilates",
    "crossfit",
    "martial-arts",
    "swing-dance",
    "tango",
    "ballet",
    "hip-hop",
    "edm",
    "classical-music",
    "opera",
    "sculpture",
    "museums",
    "history",
    "philosophy",
    "psychology",
    "astronomy",
    "physics",
    "biotech",
    "chemistry",
    "robotics",
    "drones",
    "3d-printing",
    "arduino",
    "linux",
    "python",
    "rust-lang",
    "javascript",
    "cloud",
    "devops",
    "security",
    "ux-design",
    "graphic-design",
    "fashion",
    "beauty",
    "makeup",
    "knitting",
    "quilting",
    "woodworking",
    "gardening",
    "bird-watching",
    "fishing",
    "sailing",
    "scuba",
    "skiing",
    "snowboarding",
    "skating",
    "motorcycles",
    "classic-cars",
    "aviation",
    "trains",
    "chess",
    "bridge",
    "mahjong",
    "trivia",
    "escape-rooms",
    "improv",
    "stand-up",
    "acting",
    "screenwriting",
    "poetry",
    "fiction",
    "non-fiction",
    "journalism",
    "blogging",
    "podcasting",
    "video-production",
    "animation",
    "street-photography",
    "portrait-photography",
    "landscape-photography",
    "videography",
    "drawing",
    "watercolor",
    "calligraphy",
    "ceramics",
    "jewelry-making",
    "diy",
    "home-brewing",
    "whiskey",
    "cocktails",
    "tea",
    "baking",
    "bbq",
    "sushi",
    "ramen",
    "vegan",
    "paleo",
    "nutrition",
    "weight-loss",
    "mental-health",
    "mindfulness",
    "life-coaching",
    "public-speaking",
    "toastmasters",
    "leadership",
    "product-management",
    "agile",
    "consulting",
    "freelancing",
    "remote-work",
    "digital-nomads",
    "crypto",
    "stocks",
    "options-trading",
    "financial-independence",
    "frugal-living",
    "minimalism",
    "tiny-houses",
    "sustainability",
    "climate",
    "recycling",
    "urban-farming",
    "beekeeping",
    "astronomy-club",
    "stargazing",
    "genealogy",
    "local-history",
    "walking-tours",
    "pub-crawl",
    "brunch",
    "dining-out",
    "supper-club",
    "picnics",
    "beach",
    "road-trips",
    "international-travel",
    "solo-travel",
    "expats",
    "newcomers",
    "over-40",
    "over-50",
    "20s-30s",
    "lgbtq",
    "women-in-tech",
    "moms",
    "dads",
    "pet-lovers",
    "cat-lovers",
];

/// An interned, indexable topic vocabulary.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TagVocabulary {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl TagVocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// The builtin ~200-topic vocabulary, ordered by (assumed) popularity.
    pub fn builtin() -> Self {
        let mut v = Self::new();
        for name in BUILTIN_TOPICS {
            v.intern(name);
        }
        v
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns a name, returning its (possibly pre-existing) tag.
    pub fn intern(&mut self, name: &str) -> Tag {
        if let Some(&i) = self.index.get(name) {
            return Tag(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), i);
        Tag(i)
    }

    /// Looks up a name without interning.
    pub fn get(&self, name: &str) -> Option<Tag> {
        self.index.get(name).map(|&i| Tag(i))
    }

    /// The name of a tag, if in range.
    pub fn name(&self, tag: Tag) -> Option<&str> {
        self.names.get(tag.0 as usize).map(String::as_str)
    }

    /// Rebuilds the name→tag index (needed after deserialization, since the
    /// index is not serialized).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as u32))
            .collect();
    }
}

/// A sorted, deduplicated set of tags. Sortedness makes intersection /
/// union linear merges, which is what Jaccard computations iterate.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TagSet {
    tags: Vec<Tag>,
}

impl TagSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a slice of tags (sorts and dedups). For arbitrary
    /// iterators use the `FromIterator` impl (`iter.collect::<TagSet>()`).
    pub fn from_tags(tags: &[Tag]) -> Self {
        tags.iter().copied().collect()
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, tag: Tag) -> bool {
        self.tags.binary_search(&tag).is_ok()
    }

    /// Sorted slice view.
    pub fn as_slice(&self) -> &[Tag] {
        &self.tags
    }

    /// Inserts a tag, keeping order.
    pub fn insert(&mut self, tag: Tag) {
        if let Err(pos) = self.tags.binary_search(&tag) {
            self.tags.insert(pos, tag);
        }
    }

    /// Size of the intersection with `other` (linear merge).
    pub fn intersection_size(&self, other: &TagSet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.tags.len() && j < other.tags.len() {
            match self.tags[i].cmp(&other.tags[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Size of the union with `other`.
    pub fn union_size(&self, other: &TagSet) -> usize {
        self.tags.len() + other.tags.len() - self.intersection_size(other)
    }

    /// Union with `other` as a new set.
    pub fn union(&self, other: &TagSet) -> TagSet {
        TagSet::from_iter(self.tags.iter().chain(other.tags.iter()).copied())
    }

    /// Iterates tags in order.
    pub fn iter(&self) -> impl Iterator<Item = Tag> + '_ {
        self.tags.iter().copied()
    }
}

impl FromIterator<Tag> for TagSet {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        let mut tags: Vec<Tag> = iter.into_iter().collect();
        tags.sort_unstable();
        tags.dedup();
        Self { tags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ids: &[u32]) -> TagSet {
        TagSet::from_iter(ids.iter().map(|&i| Tag(i)))
    }

    #[test]
    fn builtin_vocabulary_is_deduplicated() {
        let v = TagVocabulary::builtin();
        assert!(
            v.len() >= 180,
            "expected a rich vocabulary, got {}",
            v.len()
        );
        // Interning an existing name returns the same tag.
        let mut v2 = TagVocabulary::builtin();
        let before = v2.len();
        let t = v2.intern("hiking");
        assert_eq!(v2.len(), before);
        assert_eq!(v2.name(t), Some("hiking"));
        assert_eq!(v2.get("hiking"), Some(t));
        assert_eq!(v2.get("no-such-topic"), None);
    }

    #[test]
    fn intern_assigns_dense_ids() {
        let mut v = TagVocabulary::new();
        assert_eq!(v.intern("a"), Tag(0));
        assert_eq!(v.intern("b"), Tag(1));
        assert_eq!(v.intern("a"), Tag(0));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn rebuild_index_after_deserialization() {
        let v = TagVocabulary::builtin();
        let json = serde_json::to_string(&v).unwrap();
        let mut back: TagVocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("hiking"), None, "index is skipped by serde");
        back.rebuild_index();
        assert_eq!(back.get("hiking"), v.get("hiking"));
        assert_eq!(back.len(), v.len());
    }

    #[test]
    fn tagset_sorts_and_dedups() {
        let s = ts(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice(), &[Tag(1), Tag(3), Tag(5)]);
        assert!(s.contains(Tag(3)));
        assert!(!s.contains(Tag(2)));
    }

    #[test]
    fn insert_keeps_order_and_uniqueness() {
        let mut s = ts(&[1, 5]);
        s.insert(Tag(3));
        s.insert(Tag(3));
        assert_eq!(s.as_slice(), &[Tag(1), Tag(3), Tag(5)]);
    }

    #[test]
    fn set_operations() {
        let a = ts(&[1, 2, 3, 4]);
        let b = ts(&[3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(a.union_size(&b), 5);
        assert_eq!(a.union(&b).as_slice().len(), 5);
        let empty = TagSet::new();
        assert_eq!(a.intersection_size(&empty), 0);
        assert_eq!(a.union_size(&empty), 4);
    }

    #[test]
    fn serde_roundtrip() {
        let s = ts(&[2, 7]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "[2,7]");
        let back: TagSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
