//! Weekly time slots for check-in analysis.
//!
//! The paper estimates the social-activity probability `σ(u,t)` "by
//! examining the user's past behavior (e.g. number of check-ins)". Behaviour
//! is strongly periodic by weekday and daypart ("on Tuesdays she works until
//! late"), so we bucket time into 21 recurring slots — 7 days × 3 dayparts —
//! and estimate per-slot propensities (see [`crate::activity`]).

/// Ticks are minutes throughout the EBSN substrate.
pub const TICKS_PER_HOUR: u64 = 60;
/// Minutes per day.
pub const TICKS_PER_DAY: u64 = 24 * TICKS_PER_HOUR;
/// Minutes per week.
pub const TICKS_PER_WEEK: u64 = 7 * TICKS_PER_DAY;
/// Number of dayparts per day.
pub const DAYPARTS: usize = 3;
/// Number of weekly slots (7 days × 3 dayparts).
pub const SLOTS_PER_WEEK: usize = 7 * DAYPARTS;

/// Daypart of a within-day minute: 0 = morning (00:00–12:00),
/// 1 = afternoon (12:00–18:00), 2 = evening (18:00–24:00).
#[inline]
pub fn daypart_of_minute(minute_of_day: u64) -> usize {
    match minute_of_day {
        m if m < 12 * TICKS_PER_HOUR => 0,
        m if m < 18 * TICKS_PER_HOUR => 1,
        _ => 2,
    }
}

/// Weekly slot (0..21) of an absolute tick.
#[inline]
pub fn slot_of_tick(tick: u64) -> usize {
    let day = (tick / TICKS_PER_DAY) % 7;
    let minute_of_day = tick % TICKS_PER_DAY;
    day as usize * DAYPARTS + daypart_of_minute(minute_of_day)
}

/// Human-readable slot label, e.g. `"Fri evening"`.
pub fn slot_label(slot: usize) -> String {
    const DAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
    const PARTS: [&str; 3] = ["morning", "afternoon", "evening"];
    format!("{} {}", DAYS[(slot / DAYPARTS) % 7], PARTS[slot % DAYPARTS])
}

/// Number of complete weeks in a horizon (at least 1 to avoid division by
/// zero on short horizons).
#[inline]
pub fn weeks_in_horizon(horizon_ticks: u64) -> u64 {
    (horizon_ticks / TICKS_PER_WEEK).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dayparts_partition_the_day() {
        assert_eq!(daypart_of_minute(0), 0);
        assert_eq!(daypart_of_minute(11 * 60 + 59), 0);
        assert_eq!(daypart_of_minute(12 * 60), 1);
        assert_eq!(daypart_of_minute(17 * 60 + 59), 1);
        assert_eq!(daypart_of_minute(18 * 60), 2);
        assert_eq!(daypart_of_minute(23 * 60 + 59), 2);
    }

    #[test]
    fn slots_cycle_weekly() {
        let monday_evening = 19 * TICKS_PER_HOUR; // day 0, evening
        assert_eq!(slot_of_tick(monday_evening), 2);
        assert_eq!(
            slot_of_tick(monday_evening + TICKS_PER_WEEK),
            slot_of_tick(monday_evening)
        );
        let tuesday_morning = TICKS_PER_DAY + 9 * TICKS_PER_HOUR;
        assert_eq!(slot_of_tick(tuesday_morning), 3);
    }

    #[test]
    fn all_slots_reachable_and_bounded() {
        let mut seen = [false; SLOTS_PER_WEEK];
        for tick in (0..TICKS_PER_WEEK).step_by(60) {
            let s = slot_of_tick(tick);
            assert!(s < SLOTS_PER_WEEK);
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "every weekly slot must occur");
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(slot_label(0), "Mon morning");
        assert_eq!(slot_label(2), "Mon evening");
        assert_eq!(slot_label(20), "Sun evening");
    }

    #[test]
    fn weeks_in_horizon_floors_with_minimum_one() {
        assert_eq!(weeks_in_horizon(0), 1);
        assert_eq!(weeks_in_horizon(TICKS_PER_WEEK - 1), 1);
        assert_eq!(weeks_in_horizon(3 * TICKS_PER_WEEK + 5), 3);
    }
}
