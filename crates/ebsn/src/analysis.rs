//! Dataset statistics mirroring the measurements the paper extracts from the
//! Meetup dumps (§IV-A):
//!
//! * the mean number of events taking place during overlapping intervals
//!   (the paper reports 8.1 → the competing-events-per-interval draw);
//! * the percentage of spatio-temporally conflicting event pairs (used to
//!   pick 25 available locations);
//! * interest (Jaccard) sparsity between members and events.

use crate::dataset::EbsnDataset;
use crate::similarity::jaccard;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Temporal-overlap statistics over the event set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapStats {
    /// Mean number of *other* events overlapping an event in time.
    pub mean_concurrent: f64,
    /// Maximum number of other events overlapping any single event.
    pub max_concurrent: usize,
    /// Fraction of event pairs that overlap in time.
    pub temporal_conflict_fraction: f64,
    /// Fraction of event pairs that overlap in time *and* share a venue.
    pub spatiotemporal_conflict_fraction: f64,
}

/// Computes overlap statistics with a sweep-line over event endpoints
/// (`O(n log n)` for the concurrency counts, pair fractions estimated
/// exactly from the same pass).
pub fn overlap_stats(dataset: &EbsnDataset) -> OverlapStats {
    let n = dataset.events.len();
    if n == 0 {
        return OverlapStats {
            mean_concurrent: 0.0,
            max_concurrent: 0,
            temporal_conflict_fraction: 0.0,
            spatiotemporal_conflict_fraction: 0.0,
        };
    }
    // Sort by start; for each event, scan forward while starts precede its
    // end. Event durations are bounded (≤ 240 min), so the forward window is
    // short and this is effectively O(n log n).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| dataset.events[i].start);
    let mut concurrent = vec![0usize; n];
    let mut temporal_pairs = 0u64;
    let mut spatiotemporal_pairs = 0u64;
    for (pos, &i) in order.iter().enumerate() {
        let ei = &dataset.events[i];
        for &j in order[pos + 1..].iter() {
            let ej = &dataset.events[j];
            if ej.start >= ei.end() {
                break;
            }
            concurrent[i] += 1;
            concurrent[j] += 1;
            temporal_pairs += 1;
            if ei.venue == ej.venue {
                spatiotemporal_pairs += 1;
            }
        }
    }
    let total_pairs = (n as u64 * (n as u64 - 1)) / 2;
    OverlapStats {
        mean_concurrent: concurrent.iter().sum::<usize>() as f64 / n as f64,
        max_concurrent: concurrent.iter().copied().max().unwrap_or(0),
        temporal_conflict_fraction: if total_pairs == 0 {
            0.0
        } else {
            temporal_pairs as f64 / total_pairs as f64
        },
        spatiotemporal_conflict_fraction: if total_pairs == 0 {
            0.0
        } else {
            spatiotemporal_pairs as f64 / total_pairs as f64
        },
    }
}

/// Interest-sparsity statistics from a uniform sample of (member, event)
/// pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterestStats {
    /// Fraction of sampled pairs with strictly positive Jaccard interest.
    pub nonzero_fraction: f64,
    /// Mean Jaccard over sampled pairs (zeros included).
    pub mean_interest: f64,
    /// Mean Jaccard conditional on being non-zero.
    pub mean_nonzero_interest: f64,
}

/// Samples `samples` (member, event) pairs uniformly and reports sparsity.
pub fn interest_stats(dataset: &EbsnDataset, samples: usize, seed: u64) -> InterestStats {
    if dataset.members.is_empty() || dataset.events.is_empty() || samples == 0 {
        return InterestStats {
            nonzero_fraction: 0.0,
            mean_interest: 0.0,
            mean_nonzero_interest: 0.0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nonzero = 0usize;
    let mut sum = 0.0;
    let mut nonzero_sum = 0.0;
    for _ in 0..samples {
        let m = &dataset.members[rng.gen_range(0..dataset.members.len())];
        let e = &dataset.events[rng.gen_range(0..dataset.events.len())];
        let s = jaccard(&m.tags, &e.tags);
        sum += s;
        if s > 0.0 {
            nonzero += 1;
            nonzero_sum += s;
        }
    }
    InterestStats {
        nonzero_fraction: nonzero as f64 / samples as f64,
        mean_interest: sum / samples as f64,
        mean_nonzero_interest: if nonzero == 0 {
            0.0
        } else {
            nonzero_sum / nonzero as f64
        },
    }
}

/// Histogram of group sizes (for popularity-skew reports).
pub fn group_size_histogram(dataset: &EbsnDataset, buckets: &[usize]) -> Vec<usize> {
    let mut hist = vec![0usize; buckets.len() + 1];
    for g in &dataset.groups {
        let size = g.members.len();
        let bucket = buckets
            .iter()
            .position(|&b| size <= b)
            .unwrap_or(buckets.len());
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{EbsnEvent, EbsnEventId, GroupId, VenueId};
    use crate::generator::{generate, GeneratorConfig};
    use crate::tags::TagSet;

    fn event(id: u32, start: u64, duration: u64, venue: u32) -> EbsnEvent {
        EbsnEvent {
            id: EbsnEventId(id),
            group: GroupId(0),
            venue: VenueId(venue),
            start,
            duration,
            tags: TagSet::new(),
        }
    }

    #[test]
    fn overlap_stats_on_hand_built_events() {
        let mut ds = generate(&GeneratorConfig {
            num_events: 1,
            ..GeneratorConfig::default()
        });
        // 3 events: A [0,100) v0, B [50,150) v0, C [200,300) v1.
        ds.events = vec![
            event(0, 0, 100, 0),
            event(1, 50, 100, 0),
            event(2, 200, 100, 1),
        ];
        let stats = overlap_stats(&ds);
        // Only (A,B) overlap; they share venue 0.
        assert_eq!(stats.max_concurrent, 1);
        assert!((stats.mean_concurrent - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.temporal_conflict_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.spatiotemporal_conflict_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_stats_empty_dataset() {
        let mut ds = generate(&GeneratorConfig::default());
        ds.events.clear();
        let stats = overlap_stats(&ds);
        assert_eq!(stats.mean_concurrent, 0.0);
        assert_eq!(stats.max_concurrent, 0);
    }

    #[test]
    fn generated_dataset_has_meaningful_overlap() {
        // Event density drives overlap: at paper-like density (16K events
        // over 52 weeks ≈ 44/day) the calibration target is ~8 concurrent;
        // here 600 events over 4 weeks ≈ 21/day should yield a clearly
        // positive overlap.
        let ds = generate(&GeneratorConfig {
            num_events: 600,
            horizon_weeks: 4,
            ..GeneratorConfig::default()
        });
        let stats = overlap_stats(&ds);
        assert!(
            stats.mean_concurrent > 1.0,
            "600 events over 4 weeks must collide: {stats:?}"
        );
    }

    #[test]
    fn interest_stats_are_sane() {
        let ds = generate(&GeneratorConfig::default());
        let stats = interest_stats(&ds, 5_000, 7);
        assert!(stats.nonzero_fraction > 0.0 && stats.nonzero_fraction < 1.0);
        assert!(stats.mean_interest <= stats.mean_nonzero_interest);
        assert!(stats.mean_nonzero_interest <= 1.0);
    }

    #[test]
    fn interest_stats_deterministic_in_seed() {
        let ds = generate(&GeneratorConfig::default());
        assert_eq!(interest_stats(&ds, 1000, 3), interest_stats(&ds, 1000, 3));
    }

    #[test]
    fn group_size_histogram_buckets() {
        let ds = generate(&GeneratorConfig::default());
        let hist = group_size_histogram(&ds, &[5, 20, 50]);
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.iter().sum::<usize>(), ds.groups.len());
    }
}
