//! # ses — Social Event Scheduling
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`core`] — the SES problem, attendance engine and algorithms
//!   (GRD, GRD-PQ, TOP, RAND, exact B&B, local search, annealing);
//! * [`ebsn`] — the Meetup-like event-based-social-network
//!   substrate (datasets, tags, Jaccard interest, check-ins);
//! * [`datagen`] — the ICDE 2018 experimental parameterization,
//!   instance pipelines and disruption streams;
//! * [`service`] — the owned, handle-based service facade: typed
//!   requests/responses and named online sessions over
//!   `Arc<SesInstance>` handles (what a server front end speaks);
//! * [`sim`] — the discrete-event workload simulator stress-driving
//!   the online scheduler through the service facade;
//! * [`server`] — the sharded concurrent HTTP/1.1 front end serving
//!   the service wire types over `std::net`, with a built-in load
//!   generator and a server-vs-simulator determinism check;
//! * [`obs`] — the observability layer threaded through all of the
//!   above: request trace ids, lock-free per-thread span rings from
//!   socket accept down to the Eq. 4 kernel, stage latency
//!   histograms, and leveled rate-limited structured logs.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harness regenerating every figure of the paper.

pub use ses_core as core;
pub use ses_datagen as datagen;
pub use ses_durable as durable;
pub use ses_ebsn as ebsn;
pub use ses_obs as obs;
pub use ses_server as server;
pub use ses_service as service;
pub use ses_sim as sim;

/// Convenient flat imports for applications: everything from
/// `ses_core::prelude` plus the dataset/generator/service/simulator entry
/// points.
pub mod prelude {
    pub use ses_core::prelude::*;
    pub use ses_datagen::paper::PaperConfig;
    pub use ses_datagen::pipeline::{build_instance, BuiltInstance};
    pub use ses_ebsn::{generate, EbsnDataset, GeneratorConfig};
    pub use ses_obs::{collect_trace, format_trace, span, trace_scope, Stage, TraceId};
    pub use ses_service::{
        SchedulerService, ServiceError, SessionEvent, SessionOpen, SolveRequest, SolveResponse,
    };
    pub use ses_sim::{scenario_by_name, Scenario, SimSummary, Simulator};
}
